package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"deesim/internal/bench"
	"deesim/internal/ilpsim"
)

// MemoSalt is the sim-version salt baked into every memo key. A cell
// result is a pure function of its key, so the key must name every
// input that can change the simulator's output: bump this constant
// whenever a change alters simulation results (scheduler semantics,
// predictor tables, stat definitions) and every previously cached
// entry silently becomes a miss instead of a poisoned hit. It is a
// hard-coded constant, not build info, because two builds of the same
// source must share a cache.
const MemoSalt = "deesim-sim/v1"

// CellMemoKey renders one matrix cell's canonical cache identity. The
// trace itself is not hashed: trace generation is deterministic from
// (workload/input, scale, max), so those fields pin the trace digest
// by construction — the same reasoning that lets a resumed journal
// trust its replayed cells. Options are normalized through
// cfg.withDefaults() first, so a zero-value config and an explicitly
// defaulted one produce the same key.
func CellMemoKey(cfg Config, t MatrixTask) string {
	return cellMemoKey(MemoSalt, cfg, t)
}

func cellMemoKey(salt string, cfg Config, t MatrixTask) string {
	cfg = cfg.withDefaults()
	return strings.Join([]string{
		"cell", salt,
		"trace=" + t.Workload + "/" + t.Input,
		"scale=" + strconv.Itoa(cfg.Scale),
		"max=" + strconv.FormatUint(cfg.MaxInstrs, 10),
		"model=" + t.Model,
		"et=" + strconv.Itoa(t.ET),
		"predictor=" + cfg.Predictor,
		"opts=" + canonOpts(cfg.Opts),
	}, "|")
}

// canonOpts renders simulation options in one canonical, order-fixed
// form — shared by the memo keys and MatrixMeta so cache identity and
// journal identity can never drift apart. %g keeps float rendering
// shortest-exact: two ways of writing the same float64 value render
// identically.
func canonOpts(o ilpsim.Options) string {
	return fmt.Sprintf("designp=%g,penalty=%d,strictmem=%t,deadlock=%d,pes=%d,lat=%v,cache=%t,mem=%t",
		o.DesignP, o.Penalty, o.StrictMemory, o.DeadlockLimit, o.PEs, o.Lat, o.Cache != nil, o.Mem != nil)
}

// SweepMemoKey renders a whole sweep's canonical cache identity — the
// sorted MatrixMeta fields under the same salt. deesimd uses it to
// collapse duplicate whole-spec submissions onto one in-flight sweep.
// Execution knobs (timeouts, retries, priority, deadline) are
// deliberately absent: they change how a sweep runs, never what it
// computes.
func SweepMemoKey(ws []bench.Workload, cfg Config) string {
	return sweepMemoKey(MemoSalt, ws, cfg)
}

func sweepMemoKey(salt string, ws []bench.Workload, cfg Config) string {
	meta := MatrixMeta(ws, cfg)
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys)+2)
	parts = append(parts, "sweep", salt)
	for _, k := range keys {
		parts = append(parts, k+"="+meta[k])
	}
	return strings.Join(parts, "|")
}
