package experiments

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"deesim/internal/bench"
	"deesim/internal/ilpsim"
	"deesim/internal/runx"
	"deesim/internal/superv"
)

// matrixTestConfig keeps matrix sweeps fast: two workloads (one with
// espresso's four inputs to exercise multi-input merging), two models,
// two resource levels, short traces.
func matrixTestConfig() Config {
	return Config{
		MaxInstrs: 10_000,
		Resources: []int{8, 64},
		Models:    []ilpsim.Model{ilpsim.ModelSP, ilpsim.ModelDEECDMF},
	}
}

func matrixTestWorkloads(t *testing.T) []bench.Workload {
	t.Helper()
	var ws []bench.Workload
	for _, name := range []string{"xlisp", "espresso"} {
		w, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	return ws
}

// renderAll is the aggregate-table byte stream the acceptance criterion
// compares.
func renderAll(rs []*WorkloadResult, cfg Config) string {
	var b strings.Builder
	for _, r := range rs {
		b.WriteString(Render(r, cfg))
		b.WriteByte('\n')
	}
	return b.String()
}

// TestMatrixMatchesRunAll: the supervised matrix decomposition must
// reproduce RunAllContext's aggregate tables byte for byte.
func TestMatrixMatchesRunAll(t *testing.T) {
	cfg := matrixTestConfig()
	ws := matrixTestWorkloads(t)
	direct, err := RunAllContext(context.Background(), ws, cfg)
	if err != nil {
		t.Fatal(err)
	}
	matrix, err := RunMatrixContext(context.Background(), ws, cfg, MatrixConfig{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderAll(matrix, cfg), renderAll(direct, cfg); got != want {
		t.Errorf("matrix tables differ from direct run:\n--- matrix ---\n%s\n--- direct ---\n%s", got, want)
	}
	// Root-resolution statistics must survive the cell merge too.
	for _, r := range matrix {
		if r.Workload == "harmonic-mean" {
			continue
		}
		for _, in := range r.Inputs {
			for _, m := range cfg.Models {
				for _, et := range cfg.Resources {
					if _, ok := in.RootRate[m.String()][et]; !ok {
						t.Errorf("%s %v ET=%d: RootRate lost in merge", in.Input, m, et)
					}
				}
			}
		}
	}
}

// TestMatrixKillAndResume is the acceptance criterion end to end at the
// harness level: interrupt a journaled sweep partway (context cancel
// mid-run plus a simulated crash that tears the final journal record),
// resume it, verify only unfinished cells re-run, and verify the merged
// old+new aggregate tables are byte-identical to an uninterrupted run.
func TestMatrixKillAndResume(t *testing.T) {
	cfg := matrixTestConfig()
	ws := matrixTestWorkloads(t)
	total := MatrixTaskCount(ws, cfg)

	// Reference: uninterrupted, journal-free run.
	want, err := RunAllContext(context.Background(), ws, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantTables := renderAll(want, cfg)

	// Run 1: journaled, killed after a handful of cells.
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := superv.Create(path, "deesim", MatrixMeta(ws, cfg))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var cells atomic.Int64
	mcfg := MatrixConfig{Jobs: 2, Journal: j}
	mcfg.testCellHook = func(key string) {
		if cells.Add(1) == 5 {
			cancel()
		}
	}
	_, err = RunMatrixContext(ctx, ws, cfg, mcfg)
	cancel()
	j.Close()
	if !runx.IsKind(err, runx.KindCanceled) {
		t.Fatalf("interrupted run: %v, want KindCanceled", err)
	}

	// Simulate the crash landing mid-journal-write: tear the tail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	// Run 2: resume. Only unfinished cells may execute.
	j2, st, err := superv.Resume(path, "deesim", MatrixMeta(ws, cfg))
	if err != nil {
		t.Fatal(err)
	}
	doneBefore := len(st.Done)
	if doneBefore == 0 || doneBefore >= total {
		t.Fatalf("journal holds %d/%d cells — interruption missed the window", doneBefore, total)
	}
	var mu sync.Mutex
	fresh := map[string]bool{}
	mcfg2 := MatrixConfig{Jobs: 2, Journal: j2, Prior: st}
	mcfg2.testCellHook = func(key string) {
		mu.Lock()
		fresh[key] = true
		mu.Unlock()
	}
	got, err := RunMatrixContext(context.Background(), ws, cfg, mcfg2)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()

	if len(fresh)+doneBefore != total {
		t.Errorf("resume ran %d cells, journal held %d, matrix has %d", len(fresh), doneBefore, total)
	}
	for key := range st.Done {
		if fresh[key] {
			t.Errorf("journaled-complete cell %s re-executed on resume", key)
		}
	}
	if gotTables := renderAll(got, cfg); gotTables != wantTables {
		t.Errorf("resumed tables differ from uninterrupted run:\n--- resumed ---\n%s\n--- uninterrupted ---\n%s", gotTables, wantTables)
	}
}

func TestConfigValidate(t *testing.T) {
	base := matrixTestConfig()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative-et", func(c *Config) { c.Resources = []int{8, -4} }},
		{"duplicate-et", func(c *Config) { c.Resources = []int{8, 8} }},
		{"duplicate-model", func(c *Config) { c.Models = []ilpsim.Model{ilpsim.ModelSP, ilpsim.ModelSP} }},
		{"negative-scale", func(c *Config) { c.Scale = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			err := cfg.withDefaults().Validate()
			if !runx.IsKind(err, runx.KindInvalidInput) {
				t.Errorf("got %v, want KindInvalidInput", err)
			}
		})
	}
	if err := base.withDefaults().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	// The unlimited sentinel (ET=0) stays legal — it is a documented
	// resource level (the Lam & Wilson setting).
	zero := base
	zero.Resources = []int{0, 100}
	if err := zero.withDefaults().Validate(); err != nil {
		t.Errorf("unlimited sentinel rejected: %v", err)
	}
}

func TestDuplicateWorkloadsRejected(t *testing.T) {
	w, err := bench.ByName("xlisp")
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunAllContext(context.Background(), []bench.Workload{w, w}, matrixTestConfig())
	if !runx.IsKind(err, runx.KindInvalidInput) {
		t.Errorf("RunAllContext accepted duplicate workloads: %v", err)
	}
	_, err = RunMatrixContext(context.Background(), []bench.Workload{w, w}, matrixTestConfig(), MatrixConfig{})
	if !runx.IsKind(err, runx.KindInvalidInput) {
		t.Errorf("RunMatrixContext accepted duplicate workloads: %v", err)
	}
}

// TestMatrixResumeRejectsChangedConfig: a journal recorded under one
// matrix shape must not silently merge into a run with another.
func TestMatrixResumeRejectsChangedConfig(t *testing.T) {
	cfg := matrixTestConfig()
	ws := matrixTestWorkloads(t)
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := superv.Create(path, "deesim", MatrixMeta(ws, cfg))
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	changed := cfg
	changed.Resources = []int{8, 128}
	if _, _, err := superv.Resume(path, "deesim", MatrixMeta(ws, changed)); !runx.IsKind(err, runx.KindInvalidInput) {
		t.Errorf("changed matrix accepted on resume: %v", err)
	}
}
