// Package experiments is the harness that regenerates the paper's
// evaluation (Figure 5 and the §5.3 in-text numbers): it builds the
// workloads, records traces, runs every ILP model across the resource
// sweep, and aggregates per-workload and harmonic-mean results.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"deesim/internal/bench"
	"deesim/internal/ilpsim"
	"deesim/internal/isa"
	"deesim/internal/obs"
	"deesim/internal/predictor"
	"deesim/internal/runx"
	"deesim/internal/stats"
	"deesim/internal/trace"
)

// PaperResources is the Figure 5 horizontal axis.
var PaperResources = []int{8, 16, 32, 64, 128, 256}

// Config parameterizes a run.
type Config struct {
	// Scale is the workload input-size multiplier (0 = default).
	Scale int
	// MaxInstrs caps the dynamic trace per input (0 = to completion;
	// the paper capped at 100M).
	MaxInstrs uint64
	// Resources is the ET sweep (defaults to PaperResources).
	Resources []int
	// Models to simulate (defaults to ilpsim.PaperModels).
	Models []ilpsim.Model
	// Predictor names the run-time predictor ("2bit", "papN", "taken");
	// defaults to the paper's "2bit".
	Predictor string
	// Opts are passed to the simulator.
	Opts ilpsim.Options
	// OnResult, if non-nil, observes each workload result as it
	// completes. It lets a CLI stream partial results during a long
	// sweep — and print whatever finished when the sweep is cancelled.
	// Calls are serialized by the harness (RunAllContext and
	// RunMatrixContext guard every invocation with a mutex), so
	// implementations may touch shared state without locking; they must
	// not call back into the harness.
	OnResult func(*WorkloadResult)
}

// Validate rejects configurations that would corrupt a sweep rather
// than fail it cleanly: negative resource levels (0 stays legal — it is
// the documented Lam & Wilson "unlimited" sentinel), duplicate resource
// levels, and duplicate model names. Duplicates matter beyond
// aesthetics: a (workload, model, ET) triple is a journal task key, so
// a duplicated entry would collide in the run journal and double-count
// in harmonic means. Returns a typed *runx.Error of KindInvalidInput.
func (c Config) Validate() error {
	const stage = "experiments.Config"
	if c.Scale < 0 {
		return runx.Newf(runx.KindInvalidInput, stage, "negative workload scale %d", c.Scale)
	}
	seenET := make(map[int]bool, len(c.Resources))
	for _, et := range c.Resources {
		if et < 0 {
			return runx.Newf(runx.KindInvalidInput, stage, "negative resource level %d (0 = unlimited)", et)
		}
		if seenET[et] {
			return runx.Newf(runx.KindInvalidInput, stage, "duplicate resource level %d (would collide as a journal task key)", et)
		}
		seenET[et] = true
	}
	seenM := make(map[string]bool, len(c.Models))
	for _, m := range c.Models {
		if seenM[m.String()] {
			return runx.Newf(runx.KindInvalidInput, stage, "duplicate model %s (would collide as a journal task key)", m)
		}
		seenM[m.String()] = true
	}
	return nil
}

// validateWorkloads rejects workload sets whose names (or per-workload
// input names) collide — they would alias each other's journal records
// and merge results incorrectly.
func validateWorkloads(ws []bench.Workload) error {
	const stage = "experiments.Workloads"
	seen := make(map[string]bool, len(ws))
	for _, w := range ws {
		if w.Name == "" {
			return runx.Newf(runx.KindInvalidInput, stage, "workload with empty name")
		}
		if seen[w.Name] {
			return runx.Newf(runx.KindInvalidInput, stage, "duplicate workload name %q (journal task keys would collide)", w.Name)
		}
		seen[w.Name] = true
		ins := make(map[string]bool, len(w.Inputs))
		for _, in := range w.Inputs {
			if ins[in.Name] {
				return runx.Newf(runx.KindInvalidInput, stage, "workload %q has duplicate input %q", w.Name, in.Name)
			}
			ins[in.Name] = true
		}
	}
	return nil
}

func (c Config) withDefaults() Config {
	if len(c.Resources) == 0 {
		c.Resources = PaperResources
	}
	if len(c.Models) == 0 {
		c.Models = ilpsim.PaperModels
	}
	if c.Predictor == "" {
		c.Predictor = "2bit"
	}
	if c.Opts == (ilpsim.Options{}) {
		c.Opts = ilpsim.DefaultOptions()
	}
	return c
}

// InputResult holds one input's simulations.
type InputResult struct {
	Input    string
	Insts    int
	Accuracy float64
	Oracle   float64
	// Speedup[model][ET].
	Speedup map[string]map[int]float64
	// RootRate[model][ET] is the fraction of mispredicts resolved at the
	// tree root.
	RootRate map[string]map[int]float64
}

// WorkloadResult aggregates a workload over its inputs by harmonic mean
// (the paper's treatment of espresso's four inputs).
type WorkloadResult struct {
	Workload string
	Inputs   []*InputResult

	Accuracy float64 // mean accuracy over inputs
	Oracle   float64 // harmonic mean of input oracles
	Speedup  map[string]map[int]float64
}

// RunInput simulates one program input under every model and resource
// level.
func RunInput(name string, prog buildable, cfg Config) (*InputResult, error) {
	return RunInputContext(context.Background(), name, prog, cfg)
}

// RunInputContext is RunInput under a context: trace capture, simulator
// construction, and every model×ET run check ctx, so a deadline or
// SIGINT interrupts the sweep at the next few-thousand-cycle boundary.
// Failures are annotated with the input name (runx.Annotate) so an
// error out of a large sweep names its benchmark.
func RunInputContext(ctx context.Context, name string, prog buildable, cfg Config) (*InputResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, runx.Annotate(err, name)
	}
	endBuild := obs.TracerFrom(ctx).Span("build "+name, 0, nil)
	tr, err := recordInput(ctx, name, prog, cfg)
	if err != nil {
		endBuild()
		return nil, err
	}
	sim, err := newInputSim(ctx, name, tr, cfg)
	endBuild()
	if err != nil {
		return nil, err
	}
	return runInputSim(ctx, name, tr, sim, cfg)
}

// recordInput builds an input's program and records its dynamic trace.
func recordInput(ctx context.Context, name string, prog buildable, cfg Config) (*trace.Trace, error) {
	p, err := prog(cfg.Scale)
	if err != nil {
		return nil, fmt.Errorf("build %s: %w", name, err)
	}
	tr, err := trace.RecordContext(ctx, p, cfg.MaxInstrs)
	if err != nil {
		return nil, runx.Annotate(err, name)
	}
	return tr, nil
}

// newInputSim constructs the prepared simulator for a recorded trace.
func newInputSim(ctx context.Context, name string, tr *trace.Trace, cfg Config) (*ilpsim.Sim, error) {
	pred, err := predictor.New(cfg.Predictor)
	if err != nil {
		return nil, err
	}
	sim, err := ilpsim.NewContext(ctx, tr, pred, cfg.Opts)
	if err != nil {
		return nil, runx.Annotate(err, name)
	}
	return sim, nil
}

// runInputSim sweeps every configured model and resource level on an
// already-prepared simulator.
func runInputSim(ctx context.Context, name string, tr *trace.Trace, sim *ilpsim.Sim, cfg Config) (*InputResult, error) {
	res := &InputResult{
		Input:    name,
		Insts:    tr.Len(),
		Accuracy: sim.Accuracy(),
		Speedup:  make(map[string]map[int]float64),
		RootRate: make(map[string]map[int]float64),
	}
	res.Oracle = sim.Oracle().Speedup
	for _, m := range cfg.Models {
		ms := make(map[int]float64, len(cfg.Resources))
		rs := make(map[int]float64, len(cfg.Resources))
		for _, et := range cfg.Resources {
			var r ilpsim.Result
			var err error
			if et == 0 {
				// Resource level 0 = the Lam & Wilson unlimited setting.
				r, err = sim.RunUnlimitedContext(ctx, m)
			} else {
				r, err = sim.RunContext(ctx, m, et)
			}
			if err != nil {
				return nil, runx.Annotate(err, name)
			}
			ms[et] = r.Speedup
			rs[et] = r.RootResolutionRate()
		}
		res.Speedup[m.String()] = ms
		res.RootRate[m.String()] = rs
	}
	return res, nil
}

type buildable = func(scale int) (*isa.Program, error)

// RunWorkload simulates all of a workload's inputs and harmonic-means
// them.
func RunWorkload(w bench.Workload, cfg Config) (*WorkloadResult, error) {
	return RunWorkloadContext(context.Background(), w, cfg)
}

// RunWorkloadContext is RunWorkload under a context (see
// RunInputContext).
func RunWorkloadContext(ctx context.Context, w bench.Workload, cfg Config) (*WorkloadResult, error) {
	cfg = cfg.withDefaults()
	var inputs []*InputResult
	for _, in := range w.Inputs {
		ir, err := RunInputContext(ctx, w.Name+"/"+in.Name, in.Build, cfg)
		if err != nil {
			return nil, err
		}
		inputs = append(inputs, ir)
	}
	return aggregateWorkload(w.Name, inputs, cfg)
}

// aggregateWorkload folds per-input results into a workload datum: the
// harmonic mean over inputs per model×ET (the paper's treatment of
// espresso's four inputs), mean accuracy, and harmonic-mean oracle.
// Both the direct path (RunWorkloadContext) and the journaled matrix
// path (RunMatrixContext) aggregate through this one function, so a
// resumed run's merged old+new results are bit-identical to an
// uninterrupted run's.
func aggregateWorkload(name string, inputs []*InputResult, cfg Config) (*WorkloadResult, error) {
	out := &WorkloadResult{
		Workload: name,
		Inputs:   inputs,
		Speedup:  make(map[string]map[int]float64),
	}
	var oracles, accs []float64
	for _, ir := range out.Inputs {
		oracles = append(oracles, ir.Oracle)
		accs = append(accs, ir.Accuracy)
	}
	var err error
	if out.Oracle, err = stats.HarmonicMean(oracles); err != nil {
		return nil, fmt.Errorf("%s oracle mean: %w", name, err)
	}
	for _, a := range accs {
		out.Accuracy += a
	}
	out.Accuracy /= float64(len(accs))
	for _, m := range cfg.Models {
		ms := make(map[int]float64, len(cfg.Resources))
		for _, et := range cfg.Resources {
			var xs []float64
			for _, ir := range out.Inputs {
				xs = append(xs, ir.Speedup[m.String()][et])
			}
			if ms[et], err = stats.HarmonicMean(xs); err != nil {
				return nil, fmt.Errorf("%s %v ET=%d mean: %w", name, m, et, err)
			}
		}
		out.Speedup[m.String()] = ms
	}
	return out, nil
}

// RunAll simulates the given workloads — concurrently, one goroutine per
// workload — and appends the cross-workload harmonic mean as a synthetic
// result named "harmonic-mean" (Figure 5's summary panel).
func RunAll(ws []bench.Workload, cfg Config) ([]*WorkloadResult, error) {
	return RunAllContext(context.Background(), ws, cfg)
}

// RunAllContext is RunAll under a context. On failure or cancellation
// it fails fast — the first error cancels the sibling workloads — and
// returns the workload results that did complete alongside the error,
// so callers can report partial progress. The first non-cancellation
// error is preferred as the returned cause (a deadlocked workload, not
// the cancellations it triggered).
func RunAllContext(ctx context.Context, ws []bench.Workload, cfg Config) ([]*WorkloadResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := validateWorkloads(ws); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]*WorkloadResult, len(ws))
	errs := make([]error, len(ws))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w bench.Workload) {
			defer wg.Done()
			// One trace lane per workload goroutine, matching the
			// journaled path's one-lane-per-worker convention.
			defer obs.TracerFrom(ctx).Span("workload "+w.Name, i+1, nil)()
			r, err := RunWorkloadContext(ctx, w, cfg)
			out[i], errs[i] = r, err
			if err != nil {
				cancel() // fail fast: stop sibling workloads
				return
			}
			if cfg.OnResult != nil {
				mu.Lock()
				cfg.OnResult(r)
				mu.Unlock()
			}
		}(i, w)
	}
	wg.Wait()
	done := make([]*WorkloadResult, 0, len(out))
	for _, r := range out {
		if r != nil {
			done = append(done, r)
		}
	}
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil || (runx.IsKind(firstErr, runx.KindCanceled) && !runx.IsKind(err, runx.KindCanceled)) {
			firstErr = err
		}
	}
	if firstErr != nil {
		return done, firstErr
	}
	if len(done) > 1 {
		hm, err := crossWorkloadMean(done, cfg)
		if err != nil {
			return done, err
		}
		done = append(done, hm)
	}
	return done, nil
}

// crossWorkloadMean builds the synthetic "harmonic-mean" result across
// completed workloads (Figure 5's summary panel). Shared by
// RunAllContext and RunMatrixContext so both paths summarize
// identically.
func crossWorkloadMean(done []*WorkloadResult, cfg Config) (*WorkloadResult, error) {
	hm := &WorkloadResult{
		Workload: "harmonic-mean",
		Speedup:  make(map[string]map[int]float64),
	}
	var oracles []float64
	for _, r := range done {
		oracles = append(oracles, r.Oracle)
		hm.Accuracy += r.Accuracy
	}
	hm.Accuracy /= float64(len(done))
	var err error
	if hm.Oracle, err = stats.HarmonicMean(oracles); err != nil {
		return nil, fmt.Errorf("harmonic-mean oracle: %w", err)
	}
	for _, m := range cfg.Models {
		ms := make(map[int]float64, len(cfg.Resources))
		for _, et := range cfg.Resources {
			var xs []float64
			for _, r := range done {
				xs = append(xs, r.Speedup[m.String()][et])
			}
			if ms[et], err = stats.HarmonicMean(xs); err != nil {
				return nil, fmt.Errorf("harmonic-mean %v ET=%d: %w", m, et, err)
			}
		}
		hm.Speedup[m.String()] = ms
	}
	return hm, nil
}

// Render formats one workload result as a Figure 5 panel.
func Render(r *WorkloadResult, cfg Config) string {
	cfg = cfg.withDefaults()
	cols := make([]string, len(cfg.Resources))
	for i, et := range cfg.Resources {
		if et == 0 {
			cols[i] = "unlimited"
		} else {
			cols[i] = fmt.Sprintf("%d", et)
		}
	}
	t := stats.NewTable(
		fmt.Sprintf("%s  (oracle speedup: %.2f, predictor accuracy: %.2f%%)",
			r.Workload, r.Oracle, 100*r.Accuracy),
		"model \\ resources", cols)
	for _, m := range cfg.Models {
		for i, et := range cfg.Resources {
			// Columns are built from the same Resources slice, so Set
			// cannot be out of range.
			_ = t.Set(m.String(), i, r.Speedup[m.String()][et])
		}
	}
	return t.Render()
}
