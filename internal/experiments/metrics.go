package experiments

import "deesim/internal/obs"

// mCellsStarted counts matrix-cell simulation attempts that actually
// reached the simulator — journal replays and memo hits never
// increment it, which is exactly what makes it the thundering-herd
// assertion series: N identical concurrent submissions done right
// raise it by one sweep's worth of cells, not N.
var mCellsStarted = obs.GetOrCreateCounter("deesim_cells_started_total")
