package experiments

import "deesim/internal/obs"

// mCellsStarted counts matrix-cell simulation attempts that actually
// reached the simulator — journal replays and memo hits never
// increment it, which is exactly what makes it the thundering-herd
// assertion series: N identical concurrent submissions done right
// raise it by one sweep's worth of cells, not N.
var mCellsStarted = obs.GetOrCreateCounter("deesim_cells_started_total")

// mCellDuration is the per-cell latency histogram. Every freshly
// simulated cell observes here — single-node sweeps and leased
// distributed cells alike — and each observation under a sampled trace
// leaves that trace's id as the bucket exemplar, so a latency outlier
// in a dashboard links straight to a fetchable timeline.
var mCellDuration = obs.GetOrCreateHistogram("deesim_cell_duration_seconds", obs.DefaultLatencyBuckets)
