package experiments

import (
	"strings"
	"testing"

	"deesim/internal/bench"
	"deesim/internal/ilpsim"
)

// The canonicalization satellite: a memo key is a cache identity, so
// everything that does not change a result — spelling a default
// explicitly, writing the same float another way — must not change the
// key, and everything that does (any sim-semantics salt bump, any
// result-relevant field) must.

func paperTask() MatrixTask {
	return MatrixTask{Workload: "espresso", Input: "cps", Model: "DEE-CD-MF", ET: 64}
}

func TestMatrixTaskKeyFormatStable(t *testing.T) {
	// The journal task key is a durable wire format: coordinator
	// journals and superv journals both store it. Changing it orphans
	// every resumable journal, so the format is pinned here.
	if got, want := paperTask().Key(), "espresso/cps|DEE-CD-MF|ET=64"; got != want {
		t.Fatalf("MatrixTask.Key() = %q, want %q", got, want)
	}
}

func TestCellMemoKeyDefaultInsensitive(t *testing.T) {
	// A zero-value Config and one that spells every default explicitly
	// describe the same simulation, so they must share a cache entry.
	zero := Config{}
	explicit := Config{
		Resources: PaperResources,
		Models:    ilpsim.PaperModels,
		Predictor: "2bit",
		Opts:      ilpsim.DefaultOptions(),
	}
	if k0, k1 := CellMemoKey(zero, paperTask()), CellMemoKey(explicit, paperTask()); k0 != k1 {
		t.Fatalf("zero-value and explicitly-defaulted configs disagree:\n  %s\n  %s", k0, k1)
	}
}

func TestCellMemoKeyFloatFormattingInsensitive(t *testing.T) {
	// Two spellings of the same float64 value must render identically
	// (%g is shortest-exact), while genuinely different values — even
	// ones that print the same at low precision — must not collide.
	a := Config{Opts: ilpsim.Options{DesignP: 0.5, Penalty: 1}}
	b := Config{Opts: ilpsim.Options{DesignP: 1.0 / 2.0, Penalty: 1}}
	if ka, kb := CellMemoKey(a, paperTask()), CellMemoKey(b, paperTask()); ka != kb {
		t.Fatalf("0.5 and 1.0/2.0 produced different keys:\n  %s\n  %s", ka, kb)
	}
	// Runtime (not constant) arithmetic: 0.1 + 0.2 != 0.3 in float64.
	x, y := 0.1, 0.2
	c := Config{Opts: ilpsim.Options{DesignP: x + y, Penalty: 1}}
	d := Config{Opts: ilpsim.Options{DesignP: 0.3, Penalty: 1}}
	if kc, kd := CellMemoKey(c, paperTask()), CellMemoKey(d, paperTask()); kc == kd {
		t.Fatalf("0.1+0.2 and 0.3 collided on %s; distinct float values must get distinct keys", kc)
	}
}

func TestCellMemoKeyCoversResultRelevantFields(t *testing.T) {
	base := Config{}
	baseKey := CellMemoKey(base, paperTask())
	variants := map[string]string{
		"scale": CellMemoKey(Config{Scale: 2}, paperTask()),
		"max":   CellMemoKey(Config{MaxInstrs: 1000}, paperTask()),
		"pred":  CellMemoKey(Config{Predictor: "taken"}, paperTask()),
		"opts":  CellMemoKey(Config{Opts: ilpsim.Options{Penalty: 3}}, paperTask()),
	}
	tv := paperTask()
	tv.ET = 128
	variants["et"] = CellMemoKey(base, tv)
	tm := paperTask()
	tm.Model = "EE"
	variants["model"] = CellMemoKey(base, tm)
	ti := paperTask()
	ti.Input = "bca"
	variants["input"] = CellMemoKey(base, ti)
	seen := map[string]string{baseKey: "base"}
	for what, k := range variants {
		if prev, dup := seen[k]; dup {
			t.Errorf("changing %s produced the same key as %s: %s", what, prev, k)
		}
		seen[k] = what
	}
}

func TestMemoKeySaltChangesEveryKey(t *testing.T) {
	cfg := Config{}
	ws := bench.All()[:1]
	if a, b := cellMemoKey("deesim-sim/v1", cfg, paperTask()), cellMemoKey("deesim-sim/v2", cfg, paperTask()); a == b {
		t.Fatal("cell key identical across salt bump; a sim change would serve poisoned hits")
	}
	if a, b := sweepMemoKey("deesim-sim/v1", ws, cfg), sweepMemoKey("deesim-sim/v2", ws, cfg); a == b {
		t.Fatal("sweep key identical across salt bump")
	}
	if !strings.Contains(CellMemoKey(cfg, paperTask()), MemoSalt) {
		t.Fatal("CellMemoKey does not embed MemoSalt")
	}
	if !strings.Contains(SweepMemoKey(ws, cfg), MemoSalt) {
		t.Fatal("SweepMemoKey does not embed MemoSalt")
	}
}

func TestSweepMemoKeyDefaultInsensitiveAndDeterministic(t *testing.T) {
	ws := bench.All()[:2]
	zero := SweepMemoKey(ws, Config{})
	explicit := SweepMemoKey(ws, Config{
		Resources: PaperResources,
		Models:    ilpsim.PaperModels,
		Predictor: "2bit",
		Opts:      ilpsim.DefaultOptions(),
	})
	if zero != explicit {
		t.Fatalf("zero-value and explicitly-defaulted sweep keys disagree:\n  %s\n  %s", zero, explicit)
	}
	// Map iteration must not leak into the key: repeated renders agree.
	for i := 0; i < 16; i++ {
		if again := SweepMemoKey(ws, Config{}); again != zero {
			t.Fatalf("SweepMemoKey is nondeterministic:\n  %s\n  %s", zero, again)
		}
	}
	// Workload set is part of sweep identity.
	if one := SweepMemoKey(ws[:1], Config{}); one == zero {
		t.Fatal("sweep key ignores the workload set")
	}
}

func TestCellMemoKeyMatchesCanonOptsInMeta(t *testing.T) {
	// MatrixMeta (journal identity) and the memo key (cache identity)
	// must render options through the same canonical form, or a journal
	// a resume trusts and a cache entry a memo trusts could drift apart.
	cfg := Config{}.withDefaults()
	meta := MatrixMeta(bench.All()[:1], cfg)
	if want := canonOpts(cfg.Opts); meta["opts"] != want {
		t.Fatalf("MatrixMeta opts %q != canonOpts %q", meta["opts"], want)
	}
	if !strings.Contains(CellMemoKey(cfg, paperTask()), "opts="+canonOpts(cfg.Opts)) {
		t.Fatal("CellMemoKey does not embed canonOpts")
	}
}
