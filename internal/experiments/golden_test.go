package experiments

import (
	"context"
	"testing"

	"deesim/internal/bench"
	"deesim/internal/ilpsim"
	"deesim/internal/runx"
	"deesim/internal/superv"
)

// smokeGoldenPath is the committed capped-sweep baseline; CI's golden
// job regenerates it with the command recorded inside the file.
const smokeGoldenPath = "../../results/golden/smoke.json"

// smokeConfig mirrors the command recorded in smoke.json exactly —
// drift here means either a real simulator regression or a stale
// baseline, and the error's attribution says which cell to look at.
func smokeConfig() Config {
	return Config{
		MaxInstrs: 5_000,
		Resources: []int{8, 64},
		Models:    []ilpsim.Model{ilpsim.ModelSP, ilpsim.ModelDEECDMF},
	}
}

func smokeWorkloads(t *testing.T) []bench.Workload {
	t.Helper()
	var ws []bench.Workload
	for _, name := range []string{"xlisp", "compress"} {
		w, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	return ws
}

// lookupResults adapts a sweep's aggregate tables to the golden cell
// lookup (benchmark = workload name, including "harmonic-mean").
func lookupResults(rs []*WorkloadResult) superv.Lookup {
	return func(benchmark, model string, et int) (float64, bool) {
		for _, r := range rs {
			if r.Workload != benchmark {
				continue
			}
			v, ok := r.Speedup[model][et]
			return v, ok
		}
		return 0, false
	}
}

// TestSmokeGoldenGate is the regression gate: a capped deterministic
// sweep must reproduce the committed golden baseline within tolerance.
func TestSmokeGoldenGate(t *testing.T) {
	g, err := superv.LoadGolden(smokeGoldenPath)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunAllContext(context.Background(), smokeWorkloads(t), smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := superv.CompareGolden(g, lookupResults(rs), 0); err != nil {
		t.Errorf("capped sweep drifted from %s: %v", smokeGoldenPath, err)
	}

	// Acceptance criterion: an injected 5% drift in one golden cell must
	// fail with a typed regression naming model, benchmark, and figure.
	drifted := *g
	drifted.Points = append([]superv.GoldenPoint(nil), g.Points...)
	drifted.Points[0].Speedup *= 1.05
	err = superv.CompareGolden(&drifted, lookupResults(rs), 0)
	if !runx.IsKind(err, runx.KindRegression) {
		t.Fatalf("injected 5%% drift not detected: %v", err)
	}
	e, _ := runx.As(err)
	p := drifted.Points[0]
	if e.Model != p.Model || e.Benchmark != p.Benchmark || e.ET != p.ET {
		t.Errorf("regression attribution = %s/%s/ET=%d, want %s/%s/ET=%d",
			e.Benchmark, e.Model, e.ET, p.Benchmark, p.Model, p.ET)
	}
}

// TestFigure5GoldenLoads validates the committed full-figure snapshot's
// schema (the full uncapped sweep itself is CI's golden job, not a unit
// test — it takes minutes).
func TestFigure5GoldenLoads(t *testing.T) {
	g, err := superv.LoadGolden("../../results/golden/figure5.json")
	if err != nil {
		t.Fatal(err)
	}
	if g.Figure != "figure5" {
		t.Errorf("figure = %q", g.Figure)
	}
	// 6 benchmarks (5 workloads + harmonic-mean) × 7 models × 6 ETs.
	if len(g.Points) != 252 {
		t.Errorf("figure5 golden has %d points, want 252", len(g.Points))
	}
}
