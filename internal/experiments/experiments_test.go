package experiments

import (
	"strings"
	"testing"

	"deesim/internal/bench"
	"deesim/internal/ilpsim"
)

// testConfig caps traces so the whole Figure 5 pipeline runs quickly in
// CI while preserving the qualitative shapes.
func testConfig() Config {
	return Config{
		MaxInstrs: 50_000,
		Resources: []int{8, 16, 32, 64, 128, 256},
	}
}

var cached []*WorkloadResult

func results(t *testing.T) []*WorkloadResult {
	t.Helper()
	if cached != nil {
		return cached
	}
	rs, err := RunAll(bench.All(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cached = rs
	return rs
}

func hm(t *testing.T) *WorkloadResult {
	t.Helper()
	rs := results(t)
	last := rs[len(rs)-1]
	if last.Workload != "harmonic-mean" {
		t.Fatal("no harmonic-mean aggregate")
	}
	return last
}

// TestFigure5Panels: one result per paper panel (five workloads plus the
// harmonic mean), every model at every resource level, all positive.
func TestFigure5Panels(t *testing.T) {
	rs := results(t)
	if len(rs) != 6 {
		t.Fatalf("got %d panels, want 6", len(rs))
	}
	for _, r := range rs {
		for _, m := range ilpsim.PaperModels {
			for _, et := range testConfig().Resources {
				v := r.Speedup[m.String()][et]
				if v <= 0 {
					t.Errorf("%s %v ET=%d: speedup %v", r.Workload, m, et, v)
				}
			}
		}
		if r.Workload != "harmonic-mean" && r.Oracle <= 1 {
			t.Errorf("%s: oracle %v", r.Workload, r.Oracle)
		}
	}
}

// TestHarmonicMeanOrdering: the paper's headline ordering at high
// resources — DEE-CD-MF on top, SP-CD-MF second, each CD/MF refinement
// no worse than its base, SP at the bottom of its family.
func TestHarmonicMeanOrdering(t *testing.T) {
	h := hm(t)
	at := func(model string, et int) float64 { return h.Speedup[model][et] }
	const et = 256
	if !(at("DEE-CD-MF", et) > at("SP-CD-MF", et)) {
		t.Errorf("DEE-CD-MF (%.2f) not above SP-CD-MF (%.2f)", at("DEE-CD-MF", et), at("SP-CD-MF", et))
	}
	if !(at("SP-CD-MF", et) > at("SP-CD", et)) {
		t.Errorf("SP-CD-MF (%.2f) not above SP-CD (%.2f)", at("SP-CD-MF", et), at("SP-CD", et))
	}
	if !(at("DEE-CD", et) >= at("SP-CD", et)) {
		t.Errorf("DEE-CD (%.2f) below SP-CD (%.2f)", at("DEE-CD", et), at("SP-CD", et))
	}
	if !(at("DEE", et) >= at("SP", et)) {
		t.Errorf("DEE (%.2f) below SP (%.2f)", at("DEE", et), at("SP", et))
	}
	// §5.3: "DEE-CD and DEE-CD-MF are seen to be uniformly better than
	// both SP and EE above 16 branch path resources." On our substrate
	// DEE-CD-MF satisfies this strictly; DEE-CD ties with EE in the
	// mid-range (recorded as a deviation in EXPERIMENTS.md), so it is
	// held to SP-dominance plus an EE parity band.
	for _, et := range []int{32, 64, 128, 256} {
		if at("DEE-CD-MF", et) < at("SP", et)*0.99 || at("DEE-CD-MF", et) < at("EE", et)*0.99 {
			t.Errorf("ET=%d: DEE-CD-MF (%.2f) below SP (%.2f) or EE (%.2f)",
				et, at("DEE-CD-MF", et), at("SP", et), at("EE", et))
		}
		if at("DEE-CD", et) < at("SP", et)*0.99 || at("DEE-CD", et) < at("EE", et)*0.85 {
			t.Errorf("ET=%d: DEE-CD (%.2f) below SP (%.2f) or far below EE (%.2f)",
				et, at("DEE-CD", et), at("SP", et), at("EE", et))
		}
	}
}

// TestSPPlateau: §5.3 — "SP's performance effectively stops improving at
// resources of 16 paths".
func TestSPPlateau(t *testing.T) {
	h := hm(t)
	sp16 := h.Speedup["SP"][16]
	sp256 := h.Speedup["SP"][256]
	if sp256 > sp16*1.10 {
		t.Errorf("SP grew from %.2f at 16 to %.2f at 256; expected a plateau", sp16, sp256)
	}
	spcd16 := h.Speedup["SP-CD"][16]
	spcd256 := h.Speedup["SP-CD"][256]
	if spcd256 > spcd16*1.15 {
		t.Errorf("SP-CD grew from %.2f to %.2f; expected near-plateau", spcd16, spcd256)
	}
}

// TestDEERisesWithResources: unlike SP, DEE-CD-MF keeps improving as
// resources grow (the striking result of the harmonic-mean panel).
func TestDEERisesWithResources(t *testing.T) {
	h := hm(t)
	d16 := h.Speedup["DEE-CD-MF"][16]
	d256 := h.Speedup["DEE-CD-MF"][256]
	if d256 < d16*1.3 {
		t.Errorf("DEE-CD-MF grew only from %.2f to %.2f between 16 and 256 paths", d16, d256)
	}
}

// TestDEE8vsEE256Shape: §5.3 — DEE-CD-MF with 8 branch paths performs at
// least as well as eager execution with 256.
func TestDEE8vsEE256Shape(t *testing.T) {
	h := hm(t)
	d8 := h.Speedup["DEE-CD-MF"][8]
	e256 := h.Speedup["EE"][256]
	if d8 < e256*0.9 {
		t.Errorf("DEE-CD-MF@8 = %.2f well below EE@256 = %.2f", d8, e256)
	}
}

// TestOracleDominates: the oracle bounds every constrained model.
func TestOracleDominates(t *testing.T) {
	for _, r := range results(t) {
		if r.Workload == "harmonic-mean" {
			continue
		}
		for m, byET := range r.Speedup {
			for et, v := range byET {
				if v > r.Oracle*1.001 {
					t.Errorf("%s %s ET=%d: speedup %.2f exceeds oracle %.2f", r.Workload, m, et, v, r.Oracle)
				}
			}
		}
	}
}

// TestAccuracyBand: the run-time 2-bit accuracy across the suite sits in
// the integer-code band around the paper's 90.53%.
func TestAccuracyBand(t *testing.T) {
	h := hm(t)
	if h.Accuracy < 0.82 || h.Accuracy > 0.97 {
		t.Errorf("suite mean accuracy %.3f outside the plausible band", h.Accuracy)
	}
}

// TestRenderContainsSeries: the rendered panel includes every model row
// and the oracle headline.
func TestRenderContainsSeries(t *testing.T) {
	rs := results(t)
	out := Render(rs[0], testConfig())
	for _, m := range ilpsim.PaperModels {
		if !strings.Contains(out, m.String()) {
			t.Errorf("render missing model %s:\n%s", m, out)
		}
	}
	if !strings.Contains(out, "oracle speedup") {
		t.Error("render missing oracle")
	}
}

// TestEspressoUsesFourInputs: the paper's espresso datum is the harmonic
// mean over its four inputs.
func TestEspressoUsesFourInputs(t *testing.T) {
	for _, r := range results(t) {
		if r.Workload == "espresso" {
			if len(r.Inputs) != 4 {
				t.Errorf("espresso has %d inputs, want 4", len(r.Inputs))
			}
			return
		}
	}
	t.Error("espresso result missing")
}

// TestRunInputRejectsBadPredictor covers the error path.
func TestRunInputRejectsBadPredictor(t *testing.T) {
	cfg := testConfig()
	cfg.Predictor = "bogus"
	_, err := RunAll(bench.All()[:1], cfg)
	if err == nil {
		t.Error("bogus predictor accepted")
	}
}
