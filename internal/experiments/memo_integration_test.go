package experiments

import (
	"context"
	"encoding/json"
	"testing"

	"deesim/internal/memo"
	"deesim/internal/obs"
)

// The memo's contract at the experiments layer: a memoized sweep is
// byte-identical to an unmemoized one, a warm repeat executes zero
// simulations, and deesim_cells_started_total counts only actual
// simulator executions.

func TestMatrixMemoWarmRunSkipsAllSimulations(t *testing.T) {
	cfg := matrixTestConfig()
	ws := matrixTestWorkloads(t)
	m, err := memo.New(memo.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	started := obs.GetOrCreateCounter("deesim_cells_started_total")

	plain, err := RunMatrixContext(context.Background(), ws, cfg, MatrixConfig{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}

	s0 := started.Value()
	cold, err := RunMatrixContext(context.Background(), ws, cfg, MatrixConfig{Jobs: 4, Memo: m})
	if err != nil {
		t.Fatal(err)
	}
	coldStarted := started.Value() - s0
	if want := int64(MatrixTaskCount(ws, cfg)); coldStarted != want {
		t.Fatalf("cold memoized run started %d cells, want %d", coldStarted, want)
	}

	s1 := started.Value()
	warm, err := RunMatrixContext(context.Background(), ws, cfg, MatrixConfig{Jobs: 4, Memo: m})
	if err != nil {
		t.Fatal(err)
	}
	if d := started.Value() - s1; d != 0 {
		t.Fatalf("warm run started %d simulations, want 0 (all cells cached)", d)
	}

	// Memoized results — cold and warm — must be byte-identical to the
	// memo-less run: the cache may change latency, never bytes.
	want := renderAll(plain, cfg)
	if got := renderAll(cold, cfg); got != want {
		t.Errorf("cold memoized tables differ from plain run:\n--- memo ---\n%s\n--- plain ---\n%s", got, want)
	}
	if got := renderAll(warm, cfg); got != want {
		t.Errorf("warm memoized tables differ from plain run:\n--- memo ---\n%s\n--- plain ---\n%s", got, want)
	}
}

func TestRunCellMemoSharesEntriesWithMatrix(t *testing.T) {
	// A sweep and a lone cell RPC that describe the same simulation must
	// share a cache entry: that is what content addressing buys the
	// fleet (a coordinator prefills from cells workers computed, and
	// vice versa).
	cfg := matrixTestConfig()
	ws := matrixTestWorkloads(t)
	m, err := memo.New(memo.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	task := MatrixTasks(ws, cfg)[0]
	started := obs.GetOrCreateCounter("deesim_cells_started_total")

	first, err := RunCellMemo(context.Background(), m, ws, cfg, task)
	if err != nil {
		t.Fatal(err)
	}
	s0 := started.Value()
	second, err := RunCellMemo(context.Background(), m, ws, cfg, task)
	if err != nil {
		t.Fatal(err)
	}
	if d := started.Value() - s0; d != 0 {
		t.Fatalf("second identical cell started %d simulations, want 0", d)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if string(a) != string(b) {
		t.Fatalf("cached cell differs from computed cell:\n  %s\n  %s", a, b)
	}

	// And a fresh unmemoized RunCell agrees byte for byte.
	direct, err := RunCell(context.Background(), ws, cfg, task)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := json.Marshal(direct)
	if string(a) != string(c) {
		t.Fatalf("memoized cell differs from direct RunCell:\n  %s\n  %s", a, c)
	}
}

func TestRunCellMemoNilMemoIsRunCell(t *testing.T) {
	cfg := matrixTestConfig()
	ws := matrixTestWorkloads(t)
	task := MatrixTasks(ws, cfg)[0]
	viaNil, err := RunCellMemo(context.Background(), nil, ws, cfg, task)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunCell(context.Background(), ws, cfg, task)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(viaNil)
	b, _ := json.Marshal(direct)
	if string(a) != string(b) {
		t.Fatalf("nil-memo RunCellMemo differs from RunCell:\n  %s\n  %s", a, b)
	}
}
