package experiments

import (
	"context"
	"errors"
	"sync"
	"testing"

	"deesim/internal/bench"
	"deesim/internal/isa"
	"deesim/internal/runx"
)

func synthWorkload(name string, iters, work int) bench.Workload {
	return bench.Workload{
		Name: name,
		Inputs: []bench.Input{{
			Name: "in",
			Build: func(scale int) (*isa.Program, error) {
				return bench.BuildSynthetic(bench.SyntheticConfig{
					Iterations: iters, BranchesPerIter: 2, Bias: 85, Seed: 11, Work: work,
				})
			},
		}},
	}
}

// TestRunAllContextCancelMidSweep emulates a SIGINT arriving mid-sweep:
// the first workload to finish cancels the shared context, and
// RunAllContext must come back promptly with the completed results plus
// a typed cancellation error — not hang on, and not discard, the work
// already done.
func TestRunAllContextCancelMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mu sync.Mutex
	var finished []string
	cfg := Config{
		Resources: []int{8, 32},
		MaxInstrs: 5_000_000,
		OnResult: func(r *WorkloadResult) {
			mu.Lock()
			finished = append(finished, r.Workload)
			mu.Unlock()
			cancel()
		},
	}
	// "huge" is orders of magnitude more work than "tiny", so tiny
	// finishes (and cancels) while huge is still mid-simulation.
	ws := []bench.Workload{
		synthWorkload("tiny", 50, 1),
		synthWorkload("huge", 200_000, 16),
	}
	done, err := RunAllContext(ctx, ws, cfg)
	if err == nil {
		t.Fatal("expected a cancellation error, got full completion")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not unwrap to context.Canceled: %v", err)
	}
	if !runx.IsKind(err, runx.KindCanceled) {
		t.Fatalf("error is not KindCanceled: %v", err)
	}
	if len(done) == 0 {
		t.Fatal("no partial results returned alongside the error")
	}
	for _, r := range done {
		if r.Workload == "tiny" {
			return
		}
	}
	t.Fatalf("completed workload missing from partial results: %v", done)
}

// TestRunAllContextDeadline checks an already-expired deadline aborts
// the sweep with a typed deadline error.
func TestRunAllContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	done, err := RunAllContext(ctx, []bench.Workload{synthWorkload("w", 2000, 2)}, Config{Resources: []int{8}})
	if err == nil {
		t.Fatal("expected a deadline error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not unwrap to DeadlineExceeded: %v", err)
	}
	if !runx.IsKind(err, runx.KindDeadline) {
		t.Fatalf("error is not KindDeadline: %v", err)
	}
	if len(done) != 0 {
		t.Fatalf("expired deadline still produced results: %v", done)
	}
}
