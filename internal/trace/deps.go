package trace

import "deesim/internal/isa"

// NoDep marks the absence of a producing instruction: the value comes
// from the initial register file or memory image.
const NoDep = int32(-1)

// DataDeps holds the minimal (flow-only) data dependencies of a trace —
// what survives register renaming and perfect memory disambiguation,
// the paper's "minimal data dependencies" assumption.
type DataDeps struct {
	// Rs[k] / Rt[k] are the dynamic indices of the instructions that
	// produced instruction k's rs / rt register operands (NoDep when
	// the operand is the initial value, register zero, or unused).
	Rs, Rt []int32
	// Mem[k] is the producing store for a load (latest prior store to an
	// overlapping byte; NoDep when the value comes from the initial
	// memory image). Unused for non-loads.
	Mem []int32
}

// DataDeps scans the trace once and computes flow dependencies. With
// strictMem set, loads depend on the latest prior store regardless of
// address (the no-disambiguation ablation).
func (t *Trace) DataDeps(strictMem bool) *DataDeps {
	n := len(t.Ins)
	d := &DataDeps{
		Rs:  make([]int32, n),
		Rt:  make([]int32, n),
		Mem: make([]int32, n),
	}
	var lastWrite [isa.NumRegs]int32
	for i := range lastWrite {
		lastWrite[i] = NoDep
	}
	lastStoreAt := make(map[uint32]int32)
	lastStore := NoDep

	for i, din := range t.Ins {
		in := t.Prog.Code[din.Static]
		d.Rs[i], d.Rt[i], d.Mem[i] = NoDep, NoDep, NoDep
		readsRs, readsRt := readsOf(in)
		if readsRs && in.Rs != isa.Zero {
			d.Rs[i] = lastWrite[in.Rs]
		}
		if readsRt && in.Rt != isa.Zero {
			d.Rt[i] = lastWrite[in.Rt]
		}

		switch isa.ClassOf(din.Op) {
		case isa.ClassLoad:
			if strictMem {
				d.Mem[i] = lastStore
			} else {
				width := uint32(4)
				if din.Op == isa.LB || din.Op == isa.LBU {
					width = 1
				}
				dep := NoDep
				for b := uint32(0); b < width; b++ {
					if s, ok := lastStoreAt[din.MemAddr+b]; ok && s > dep {
						dep = s
					}
				}
				d.Mem[i] = dep
			}
		case isa.ClassStore:
			width := uint32(4)
			if din.Op == isa.SB {
				width = 1
			}
			for b := uint32(0); b < width; b++ {
				lastStoreAt[din.MemAddr+b] = int32(i)
			}
			lastStore = int32(i)
		}

		if dst, ok := in.Dst(); ok && dst != isa.Zero {
			lastWrite[dst] = int32(i)
		}
	}
	return d
}

// readsOf reports which of the rs/rt register fields an instruction
// actually reads (consistent with isa.Inst.Src, but positional).
func readsOf(in isa.Inst) (rs, rt bool) {
	switch in.Op {
	case isa.NOP, isa.HALT, isa.J, isa.JAL, isa.LUI:
		return false, false
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.NOR, isa.SLT,
		isa.SLTU, isa.SLLV, isa.SRLV, isa.SRAV, isa.MUL, isa.DIV, isa.REM,
		isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.SW, isa.SB:
		return true, true
	default:
		return true, false
	}
}
