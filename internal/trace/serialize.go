package trace

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"deesim/internal/isa"
)

// Trace files let a recorded dynamic stream be snapshotted and replayed
// without re-running the functional simulator — the usual workflow for
// trace-driven evaluation (the paper's own simulator consumed prepared
// traces). The format is a gzip-compressed gob of the program image and
// the dynamic stream; it is versioned by a magic header.

const fileMagic = "deesim-trace-v1\n"

// serialized is the on-disk form (exported fields for gob).
type serialized struct {
	Code        []byte // isa.EncodeProgram image
	Data        []byte
	DataBase    uint32
	Symbols     map[string]int
	DataSymbols map[string]uint32
	Ins         []DynInst
}

// WriteTo streams the trace. The returned count is bytes written.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	if _, err := io.WriteString(cw, fileMagic); err != nil {
		return cw.n, err
	}
	zw := gzip.NewWriter(cw)
	enc := gob.NewEncoder(zw)
	s := serialized{
		Code:        isa.EncodeProgram(t.Prog),
		Data:        t.Prog.Data,
		DataBase:    t.Prog.DataBase,
		Symbols:     t.Prog.Symbols,
		DataSymbols: t.Prog.DataSymbols,
		Ins:         t.Ins,
	}
	if err := enc.Encode(&s); err != nil {
		return cw.n, fmt.Errorf("trace: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadTrace loads a trace written by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("trace: not a deesim trace file")
	}
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer zr.Close()
	var s serialized
	if err := gob.NewDecoder(zr).Decode(&s); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	prog, err := isa.DecodeProgram(s.Code)
	if err != nil {
		return nil, fmt.Errorf("trace: program image: %w", err)
	}
	prog.Data = s.Data
	prog.DataBase = s.DataBase
	prog.Symbols = s.Symbols
	prog.DataSymbols = s.DataSymbols
	t := &Trace{Prog: prog, Ins: s.Ins}
	if len(t.Ins) == 0 {
		return nil, fmt.Errorf("trace: empty trace file")
	}
	return t, nil
}

// SaveFile and LoadFile are path-based conveniences.
func (t *Trace) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a trace file from disk.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
