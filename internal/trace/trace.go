// Package trace defines the dynamic instruction trace consumed by the ILP
// limit simulator, its capture from the functional simulator, and the
// branch-path segmentation and statistics the paper's methodology uses
// (a "branch path" is the dynamic code between branches, including the
// exit branch — §2 of the paper).
package trace

import (
	"context"
	"fmt"

	"deesim/internal/cpu"
	"deesim/internal/isa"
)

// DynInst is one retired dynamic instruction.
type DynInst struct {
	// Static is the instruction's index in Program.Code.
	Static int32
	// Op is the operation (copied out for locality).
	Op isa.Op
	// Taken is meaningful for control transfers: whether it redirected.
	Taken bool
	// Next is the dynamic successor's static index.
	Next int32
	// MemAddr is the effective address for loads and stores.
	MemAddr uint32
	// Val is the architectural result of the instruction: the value
	// written to the destination register (loads included), or zero for
	// instructions writing none. The Levo model validates its dataflow
	// wiring against these values.
	Val uint32
}

// IsBranch reports whether the dynamic instruction is a conditional
// branch (the unit the speculation models reason about).
func (d DynInst) IsBranch() bool { return isa.IsCondBranch(d.Op) }

// Trace is a dynamic instruction stream plus the program it came from.
type Trace struct {
	Prog *isa.Program
	Ins  []DynInst

	// paths[i] is the index into Ins one past the end of branch path i.
	// Computed lazily by Paths.
	pathEnds []int32
}

// Record runs the program on the functional simulator, capturing up to
// limit dynamic instructions (0 = unlimited, bounded only by HALT). A
// program that exceeds the limit yields a truncated trace and no error,
// matching the paper's "up to 100 million instructions" methodology.
func Record(p *isa.Program, limit uint64) (*Trace, error) {
	return RecordContext(context.Background(), p, limit)
}

// RecordContext is Record with cooperative cancellation: the functional
// simulator checks ctx every few thousand retired instructions, so a
// deadline bounds trace capture as well as simulation.
func RecordContext(ctx context.Context, p *isa.Program, limit uint64) (*Trace, error) {
	t := &Trace{Prog: p}
	if limit > 0 {
		t.Ins = make([]DynInst, 0, min64(limit, 1<<22))
	}
	c := cpu.New(p)
	c.Hook = func(idx int, in isa.Inst, taken bool, next int, memAddr uint32, result uint32) {
		t.Ins = append(t.Ins, DynInst{
			Static:  int32(idx),
			Op:      in.Op,
			Taken:   taken,
			Next:    int32(next),
			MemAddr: memAddr,
			Val:     result,
		})
	}
	err := c.RunContext(ctx, limit)
	if err != nil {
		if _, truncated := err.(*cpu.ErrLimit); !truncated {
			return nil, err
		}
	}
	if len(t.Ins) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	return t, nil
}

// Validate checks the trace's referential integrity against its program:
// every dynamic instruction's static index must be in range, its opcode
// must match the static instruction it claims to be, and its successor
// index must be in range or one past the end (fallthrough to HALT). A
// corrupted stream — truncated mid-transfer, bit-flipped indices or
// opcodes — is rejected here with a descriptive error instead of
// panicking deep inside a simulator's precompute.
func (t *Trace) Validate() error {
	if t.Prog == nil || len(t.Prog.Code) == 0 {
		return fmt.Errorf("trace: nil or empty program")
	}
	if len(t.Ins) == 0 {
		return fmt.Errorf("trace: empty instruction stream")
	}
	n := int32(len(t.Prog.Code))
	for i, d := range t.Ins {
		if d.Static < 0 || d.Static >= n {
			return fmt.Errorf("trace: instruction %d has static index %d outside program [0,%d)", i, d.Static, n)
		}
		if got := t.Prog.Code[d.Static].Op; d.Op != got {
			return fmt.Errorf("trace: instruction %d claims op %v but program[%d] is %v", i, d.Op, d.Static, got)
		}
		if d.Next < 0 || d.Next > n {
			return fmt.Errorf("trace: instruction %d has successor %d outside program [0,%d]", i, d.Next, n)
		}
	}
	return nil
}

// Len is the number of dynamic instructions.
func (t *Trace) Len() int { return len(t.Ins) }

// Paths segments the trace into branch paths: each path is a maximal run
// of instructions ending with a conditional branch (or with the final
// instruction of the trace). Unconditional jumps do not end a path — the
// speculation models only spend tree resources on conditional branches;
// jumps never mispredict. The return value is a slice of end offsets:
// path i covers Ins[start(i):end(i)) with start(i)=end(i-1).
func (t *Trace) Paths() []int32 {
	if t.pathEnds != nil {
		return t.pathEnds
	}
	var ends []int32
	for i, d := range t.Ins {
		if d.IsBranch() {
			ends = append(ends, int32(i+1))
		}
	}
	if n := int32(len(t.Ins)); len(ends) == 0 || ends[len(ends)-1] != n {
		ends = append(ends, n)
	}
	t.pathEnds = ends
	return ends
}

// NumPaths is the number of branch paths in the trace.
func (t *Trace) NumPaths() int { return len(t.Paths()) }

// PathBounds returns the [start, end) dynamic-instruction range of path i.
func (t *Trace) PathBounds(i int) (start, end int32) {
	ends := t.Paths()
	if i > 0 {
		start = ends[i-1]
	}
	return start, ends[i]
}

// PathBranch returns the dynamic index of the branch terminating path i,
// or -1 if the path is the trailing branchless tail.
func (t *Trace) PathBranch(i int) int32 {
	_, end := t.PathBounds(i)
	if end > 0 && t.Ins[end-1].IsBranch() {
		return end - 1
	}
	return -1
}

// Stats summarizes the properties the paper's §5.1 discusses.
type Stats struct {
	DynInsts          int     // dynamic instruction count
	CondBranches      int     // dynamic conditional branches
	Jumps             int     // dynamic unconditional transfers
	Loads, Stores     int     // dynamic memory operations
	TakenRate         float64 // fraction of conditional branches taken
	BranchDensity     float64 // conditional branches per instruction
	MeanPathLen       float64 // mean branch-path length in instructions
	StaticInsts       int     // program size
	StaticBranches    int     // static conditional branch sites
	BackwardTakenRate float64 // taken rate of backward branches
}

// ComputeStats walks the trace once.
func (t *Trace) ComputeStats() Stats {
	s := Stats{DynInsts: len(t.Ins), StaticInsts: len(t.Prog.Code)}
	taken := 0
	backTaken, backTotal := 0, 0
	staticBr := make(map[int32]struct{})
	for _, d := range t.Ins {
		switch {
		case d.IsBranch():
			s.CondBranches++
			staticBr[d.Static] = struct{}{}
			if d.Taken {
				taken++
			}
			if backward := t.Prog.Code[d.Static].Imm <= d.Static; backward {
				backTotal++
				if d.Taken {
					backTaken++
				}
			}
		case isa.ClassOf(d.Op) == isa.ClassJump:
			s.Jumps++
		case isa.ClassOf(d.Op) == isa.ClassLoad:
			s.Loads++
		case isa.ClassOf(d.Op) == isa.ClassStore:
			s.Stores++
		}
	}
	s.StaticBranches = len(staticBr)
	if s.CondBranches > 0 {
		s.TakenRate = float64(taken) / float64(s.CondBranches)
		s.BranchDensity = float64(s.CondBranches) / float64(s.DynInsts)
		s.MeanPathLen = float64(s.DynInsts) / float64(t.NumPaths())
	}
	if backTotal > 0 {
		s.BackwardTakenRate = float64(backTaken) / float64(backTotal)
	}
	return s
}

// LoopCaptureRate reports the fraction of dynamic taken-backward-branch
// loop bodies whose span (branch index − target index + 1) fits within a
// static window of iqSize instructions. The paper (§4.2) reports >70% of
// SPECint92 conditional-backward-branch loops fitting an IQ of length 32.
func (t *Trace) LoopCaptureRate(iqSize int) float64 {
	fits, total := 0, 0
	for _, d := range t.Ins {
		if !d.IsBranch() || !d.Taken {
			continue
		}
		target := t.Prog.Code[d.Static].Imm
		if target > d.Static {
			continue // forward branch
		}
		total++
		if int(d.Static-target)+1 <= iqSize {
			fits++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(fits) / float64(total)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
