package trace

import (
	"bytes"
	"testing"

	"deesim/internal/asm"
	"deesim/internal/isa"
)

func record(t *testing.T, src string, limit uint64) *Trace {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Record(p, limit)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

const loopSrc = `
    li  $t0, 4
loop:
    addi $t0, $t0, -1
    bgtz $t0, loop
    halt
`

func TestRecordBasic(t *testing.T) {
	tr := record(t, loopSrc, 0)
	// li(1) + 4 iterations × 2 + halt = 10 dynamic instructions.
	if tr.Len() != 10 {
		t.Fatalf("trace length %d, want 10", tr.Len())
	}
	branches := 0
	takens := 0
	for _, d := range tr.Ins {
		if d.IsBranch() {
			branches++
			if d.Taken {
				takens++
			}
		}
	}
	if branches != 4 || takens != 3 {
		t.Errorf("branches=%d takens=%d, want 4/3", branches, takens)
	}
}

func TestRecordTruncates(t *testing.T) {
	tr := record(t, "spin: b spin\n    halt", 500)
	if tr.Len() != 500 {
		t.Errorf("truncated trace length %d, want 500", tr.Len())
	}
}

func TestPaths(t *testing.T) {
	tr := record(t, loopSrc, 0)
	// Branch paths end at each conditional branch; the tail (halt) forms
	// the final path. 4 branches + tail = 5 paths.
	if got := tr.NumPaths(); got != 5 {
		t.Fatalf("paths = %d, want 5", got)
	}
	// First path: li, addi, bgtz = instructions 0..2.
	s, e := tr.PathBounds(0)
	if s != 0 || e != 3 {
		t.Errorf("path 0 bounds [%d,%d), want [0,3)", s, e)
	}
	// Middle paths: addi, bgtz.
	s, e = tr.PathBounds(1)
	if e-s != 2 {
		t.Errorf("path 1 length %d, want 2", e-s)
	}
	// Final path: halt alone; no terminating branch.
	if br := tr.PathBranch(4); br != -1 {
		t.Errorf("tail path branch = %d, want -1", br)
	}
	if br := tr.PathBranch(0); br != 2 {
		t.Errorf("path 0 branch at %d, want 2", br)
	}
}

func TestJumpsDoNotEndPaths(t *testing.T) {
	tr := record(t, `
    li $t0, 2
loop:
    b  skip
skip:
    addi $t0, $t0, -1
    bgtz $t0, loop
    halt
`, 0)
	// Jumps (b → j) stay inside branch paths.
	for i := 0; i < tr.NumPaths()-1; i++ {
		br := tr.PathBranch(i)
		if br < 0 || !tr.Ins[br].IsBranch() {
			t.Errorf("path %d not terminated by a conditional branch", i)
		}
	}
}

func TestComputeStats(t *testing.T) {
	tr := record(t, loopSrc, 0)
	st := tr.ComputeStats()
	if st.DynInsts != 10 || st.CondBranches != 4 {
		t.Errorf("stats: %+v", st)
	}
	if st.TakenRate != 0.75 {
		t.Errorf("taken rate %v, want 0.75", st.TakenRate)
	}
	if st.StaticBranches != 1 {
		t.Errorf("static branches %d, want 1", st.StaticBranches)
	}
	if st.BackwardTakenRate != 0.75 {
		t.Errorf("backward taken rate %v, want 0.75", st.BackwardTakenRate)
	}
	if st.MeanPathLen != 2 {
		t.Errorf("mean path length %v, want 2", st.MeanPathLen)
	}
}

func TestLoopCaptureRate(t *testing.T) {
	tr := record(t, loopSrc, 0)
	// The loop spans 2 instructions: fits any window ≥ 2.
	if r := tr.LoopCaptureRate(32); r != 1 {
		t.Errorf("capture rate %v, want 1", r)
	}
	if r := tr.LoopCaptureRate(1); r != 0 {
		t.Errorf("capture rate with window 1 = %v, want 0", r)
	}
}

func TestMemAddrRecorded(t *testing.T) {
	tr := record(t, `
    la $t0, buf
    li $t1, 7
    sw $t1, 4($t0)
    lw $t2, 4($t0)
    halt
.data
buf: .space 8
`, 0)
	var stores, loads int
	var addr uint32
	for _, d := range tr.Ins {
		switch isa.ClassOf(d.Op) {
		case isa.ClassStore:
			stores++
			addr = d.MemAddr
		case isa.ClassLoad:
			loads++
			if d.MemAddr != addr {
				t.Errorf("load addr %#x != store addr %#x", d.MemAddr, addr)
			}
		}
	}
	if stores != 1 || loads != 1 {
		t.Errorf("stores=%d loads=%d", stores, loads)
	}
}

func TestRecordPropagatesFaults(t *testing.T) {
	p, err := asm.Assemble(`
    la $t0, buf
    lw $t1, 2($t0)
    halt
.data
buf: .space 8
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Record(p, 0); err == nil {
		t.Error("unaligned fault not propagated")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	tr := record(t, loopSrc, 0)
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ins) != len(tr.Ins) {
		t.Fatalf("round trip length %d -> %d", len(tr.Ins), len(got.Ins))
	}
	for i := range tr.Ins {
		if got.Ins[i] != tr.Ins[i] {
			t.Fatalf("inst %d: %+v != %+v", i, got.Ins[i], tr.Ins[i])
		}
	}
	for i := range tr.Prog.Code {
		if got.Prog.Code[i] != tr.Prog.Code[i] {
			t.Fatalf("code %d differs", i)
		}
	}
	// Same branch-path segmentation and stats after reload.
	if got.NumPaths() != tr.NumPaths() {
		t.Errorf("paths %d -> %d", tr.NumPaths(), got.NumPaths())
	}
	if a, b := tr.ComputeStats(), got.ComputeStats(); a != b {
		t.Errorf("stats changed: %+v vs %+v", a, b)
	}
}

func TestSerializeFile(t *testing.T) {
	tr := record(t, loopSrc, 0)
	path := t.TempDir() + "/loop.trace"
	if err := tr.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Errorf("file round trip length %d -> %d", tr.Len(), got.Len())
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("not a trace at all......"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadTrace(bytes.NewReader([]byte(""))); err == nil {
		t.Error("empty input accepted")
	}
}
