package trace

import (
	"math/rand"
	"testing"

	"deesim/internal/asm"
	"deesim/internal/isa"
)

func TestDataDepsSimpleChain(t *testing.T) {
	tr := record(t, `
    li   $t0, 1
    addi $t1, $t0, 2
    add  $t2, $t0, $t1
    halt
`, 0)
	d := tr.DataDeps(false)
	// addi reads t0 from inst 0.
	if d.Rs[1] != 0 {
		t.Errorf("Rs[1] = %d, want 0", d.Rs[1])
	}
	// add reads t0 (inst 0) and t1 (inst 1).
	if d.Rs[2] != 0 || d.Rt[2] != 1 {
		t.Errorf("add deps = (%d,%d), want (0,1)", d.Rs[2], d.Rt[2])
	}
	// li reads nothing.
	if d.Rs[0] != NoDep || d.Rt[0] != NoDep {
		t.Errorf("li deps = (%d,%d)", d.Rs[0], d.Rt[0])
	}
}

func TestDataDepsMemoryGranularity(t *testing.T) {
	tr := record(t, `
    la  $t0, buf
    li  $t1, 0x11223344
    sw  $t1, 0($t0)
    li  $t2, 0x55
    sb  $t2, 2($t0)      # overwrites byte 2 of the word
    lw  $t3, 0($t0)      # depends on the LATEST overlapping store (sb)
    lb  $t4, 0($t0)      # byte 0: still the sw
    lb  $t5, 2($t0)      # byte 2: the sb
    halt
.data
buf: .space 8
`, 0)
	d := tr.DataDeps(false)
	// Instruction indices: la=0,1 (lui+ori), li 0x11223344=2,3 (lui+ori),
	// sw=4, li 0x55=5, sb=6, lw=7, lb@0=8, lb@2=9.
	if d.Mem[7] != 6 {
		t.Errorf("lw mem dep = %d, want 6 (the byte store)", d.Mem[7])
	}
	if d.Mem[8] != 4 {
		t.Errorf("lb@0 mem dep = %d, want 4 (the word store)", d.Mem[8])
	}
	if d.Mem[9] != 6 {
		t.Errorf("lb@2 mem dep = %d, want 6", d.Mem[9])
	}
}

func TestDataDepsStrictMemory(t *testing.T) {
	tr := record(t, `
    la  $t0, buf
    li  $t1, 7
    sw  $t1, 0($t0)
    lw  $t2, 4($t0)      # disjoint address
    halt
.data
buf: .space 8
`, 0)
	exact := tr.DataDeps(false)
	strict := tr.DataDeps(true)
	lw := 4 // la=0,1, li=2, sw=3, lw=4
	if exact.Mem[lw] != NoDep {
		t.Errorf("exact disambiguation: lw dep = %d, want none", exact.Mem[lw])
	}
	if strict.Mem[lw] != 3 {
		t.Errorf("strict memory: lw dep = %d, want 3", strict.Mem[lw])
	}
}

// TestDataDepsInvariants: property test over random programs — every
// producer precedes its consumer, writes the register read, and memory
// producers are stores overlapping the load's address.
func TestDataDepsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		prog := randomProgram(rng)
		tr, err := Record(prog, 30_000)
		if err != nil {
			continue // random programs may fault (alignment); fine
		}
		d := tr.DataDeps(false)
		for k, din := range tr.Ins {
			in := prog.Code[din.Static]
			for _, dep := range []struct {
				p   int32
				reg isa.Reg
			}{{d.Rs[k], in.Rs}, {d.Rt[k], in.Rt}} {
				if dep.p == NoDep {
					continue
				}
				if dep.p >= int32(k) {
					t.Fatalf("trial %d: producer %d not before consumer %d", trial, dep.p, k)
				}
				pin := prog.Code[tr.Ins[dep.p].Static]
				dst, ok := pin.Dst()
				if !ok || dst != dep.reg {
					t.Fatalf("trial %d: producer %v does not write %v", trial, pin, dep.reg)
				}
				// No intervening writer of the same register.
				for j := dep.p + 1; j < int32(k); j++ {
					jin := prog.Code[tr.Ins[j].Static]
					if jd, ok := jin.Dst(); ok && jd == dep.reg && jd != isa.Zero {
						t.Fatalf("trial %d: intervening writer of %v at %d between %d and %d",
							trial, dep.reg, j, dep.p, k)
					}
				}
			}
			if p := d.Mem[k]; p != NoDep {
				if isa.ClassOf(tr.Ins[p].Op) != isa.ClassStore {
					t.Fatalf("trial %d: memory producer %d is not a store", trial, p)
				}
				if p >= int32(k) {
					t.Fatalf("trial %d: memory producer after consumer", trial)
				}
				// Overlap check.
				la, lw := tr.Ins[k].MemAddr, width(tr.Ins[k].Op)
				sa, sw := tr.Ins[p].MemAddr, width(tr.Ins[p].Op)
				if la+lw <= sa || sa+sw <= la {
					t.Fatalf("trial %d: store [%#x,%d) does not overlap load [%#x,%d)", trial, sa, sw, la, lw)
				}
			}
		}
	}
}

func width(op isa.Op) uint32 {
	switch op {
	case isa.LB, isa.LBU, isa.SB:
		return 1
	default:
		return 4
	}
}

// randomProgram generates a terminating straight-line-plus-loops program
// over a small register set and a private data buffer.
func randomProgram(rng *rand.Rand) *isa.Program {
	src := "    la $s7, buf\n    li $s6, " + itoa(5+rng.Intn(20)) + "\nloop:\n"
	body := 4 + rng.Intn(12)
	for i := 0; i < body; i++ {
		r1 := rng.Intn(6)
		r2 := rng.Intn(6)
		switch rng.Intn(6) {
		case 0:
			src += "    addi $t" + itoa(r1) + ", $t" + itoa(r2) + ", " + itoa(rng.Intn(64)) + "\n"
		case 1:
			src += "    add $t" + itoa(r1) + ", $t" + itoa(r2) + ", $s6\n"
		case 2:
			src += "    xor $t" + itoa(r1) + ", $t" + itoa(r1) + ", $t" + itoa(r2) + "\n"
		case 3:
			off := 4 * rng.Intn(8)
			src += "    sw $t" + itoa(r1) + ", " + itoa(off) + "($s7)\n"
		case 4:
			off := 4 * rng.Intn(8)
			src += "    lw $t" + itoa(r1) + ", " + itoa(off) + "($s7)\n"
		case 5:
			off := rng.Intn(32)
			src += "    lbu $t" + itoa(r1) + ", " + itoa(off) + "($s7)\n"
		}
	}
	src += "    addi $s6, $s6, -1\n    bgtz $s6, loop\n    halt\n.data\nbuf: .space 64\n"
	return asm.MustAssemble(src)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}
