package faultinject

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
	"sync"
	"syscall"
	"time"
)

// FaultyTransport is the network-layer fault injector: an
// http.RoundTripper that wraps a real transport with three
// deterministic, seeded fault modes —
//
//   - injected latency: with probability LatencyRate a request is
//     delayed by Latency before reaching the inner transport;
//   - connection resets: with probability ResetRate the round trip
//     fails with an error wrapping syscall.ECONNRESET, as a torn TCP
//     connection would;
//   - 5xx bursts: with probability ErrorRate a burst opens and the next
//     BurstLen requests (including this one) are answered with a
//     synthesized 503 carrying a structured JSON error body, never
//     reaching the inner transport — the signature of a crashing or
//     overloaded replica behind a load balancer.
//
// Fault scheduling is driven by the same splitmix64 generator as the
// simulator-side injectors, so a failing client retry schedule replays
// exactly under the same seed. Wrap an httptest server's client with it
// to exercise retry/backoff/circuit-breaker behavior hermetically.
type FaultyTransport struct {
	Inner http.RoundTripper

	LatencyRate float64
	Latency     time.Duration

	ResetRate float64

	ErrorRate float64
	BurstLen  int

	mu    sync.Mutex
	r     *rng
	burst int // remaining synthesized 503s in the open burst

	delays, resets, errs uint64

	sleep func(time.Duration) // test seam; nil = time.Sleep
}

// NewFaultyTransport wraps inner (nil = http.DefaultTransport) with the
// given fault rates under seed. BurstLen defaults to 1 (independent
// 503s rather than bursts).
func NewFaultyTransport(inner http.RoundTripper, latencyRate float64, latency time.Duration, resetRate, errorRate float64, burstLen int, seed uint64) *FaultyTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	if burstLen < 1 {
		burstLen = 1
	}
	return &FaultyTransport{
		Inner:       inner,
		LatencyRate: latencyRate,
		Latency:     latency,
		ResetRate:   resetRate,
		ErrorRate:   errorRate,
		BurstLen:    burstLen,
		r:           newRNG(seed),
	}
}

// resetErr wraps ECONNRESET so errors.Is(err, syscall.ECONNRESET)
// holds, matching what a real net.OpError chain would unwrap to.
type resetErr struct{}

func (resetErr) Error() string   { return "faultinject: connection reset by peer" }
func (resetErr) Unwrap() error   { return syscall.ECONNRESET }
func (resetErr) Timeout() bool   { return false }
func (resetErr) Temporary() bool { return true }

// RoundTrip applies the scheduled fault, if any, then defers to the
// inner transport. It is safe for concurrent use (fault scheduling is
// serialized; inner round trips are not).
func (t *FaultyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	var delay time.Duration
	if t.r.hit(t.LatencyRate) {
		t.delays++
		delay = t.Latency
	}
	if t.burst > 0 {
		t.burst--
		t.errs++
		t.mu.Unlock()
		t.nap(delay)
		return synth503(req), nil
	}
	if t.r.hit(t.ErrorRate) {
		t.burst = t.BurstLen - 1
		t.errs++
		t.mu.Unlock()
		t.nap(delay)
		return synth503(req), nil
	}
	if t.r.hit(t.ResetRate) {
		t.resets++
		t.mu.Unlock()
		t.nap(delay)
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, resetErr{}
	}
	t.mu.Unlock()
	t.nap(delay)
	return t.Inner.RoundTrip(req)
}

// nap sleeps the injected latency; called with t.mu released (the
// sleep may be long).
func (t *FaultyTransport) nap(d time.Duration) {
	if d <= 0 {
		return
	}
	if t.sleep != nil {
		t.sleep(d)
		return
	}
	time.Sleep(d)
}

// Faults reports how many requests were delayed, reset, and answered
// with a synthesized 503.
func (t *FaultyTransport) Faults() (delays, resets, errs5xx uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.delays, t.resets, t.errs
}

// synth503 fabricates the 503 an overloaded replica would return,
// complete with the structured error body the deesimd client knows how
// to classify.
func synth503(req *http.Request) *http.Response {
	if req.Body != nil {
		req.Body.Close()
	}
	body := []byte(`{"error":"faultinject: injected 5xx burst","kind":"unavailable"}` + "\n")
	return &http.Response{
		Status:        strconv.Itoa(http.StatusServiceUnavailable) + " " + http.StatusText(http.StatusServiceUnavailable),
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}
