// Package faultinject provides deterministic, seeded fault injectors
// for the simulation stack — the degraded-predictor and perturbed-input
// regime under which speculative-execution results must stay trustworthy
// (Mitrevski & Gušev; see PAPERS.md). Three fault surfaces are covered:
//
//   - the branch predictor (FlipPredictor: flip a fraction of
//     predictions);
//   - the data cache (FaultyMem: delayed and corrupted responses);
//   - the trace stream (TruncateTrace, BitFlipTrace: truncated and
//     bit-flipped dynamic instructions).
//
// All injectors are driven by a splitmix64 generator seeded by the
// caller, so a failing configuration replays exactly. The invariant
// audit suite (audit_test.go) drives every simulator model through every
// injector and asserts the hardened-runtime contract: a correct result
// or a typed *runx.Error — never a panic, a hang, or a silently wrong
// speedup.
package faultinject

import (
	"fmt"

	"deesim/internal/predictor"
	"deesim/internal/trace"
)

// rng is a splitmix64 generator: tiny, seedable, and good enough for
// fault scheduling (no dependency on math/rand ordering guarantees).
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed ^ 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform value in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// hit reports a fault event with probability rate.
func (r *rng) hit(rate float64) bool { return rate > 0 && r.float() < rate }

// --- predictor faults ---

// FlipPredictor wraps a predictor and deterministically flips a fraction
// Rate of its predictions — the "degraded predictor" regime. Updates
// pass through unflipped, so the inner predictor still trains on the
// true outcome stream.
type FlipPredictor struct {
	Inner predictor.Predictor
	Rate  float64
	r     *rng
}

// NewFlipPredictor wraps inner, flipping rate (0..1) of predictions
// under the given seed.
func NewFlipPredictor(inner predictor.Predictor, rate float64, seed uint64) *FlipPredictor {
	return &FlipPredictor{Inner: inner, Rate: rate, r: newRNG(seed)}
}

func (p *FlipPredictor) Name() string {
	return fmt.Sprintf("flip%.0f%%(%s)", 100*p.Rate, p.Inner.Name())
}

func (p *FlipPredictor) Predict(pc int32) bool {
	v := p.Inner.Predict(pc)
	if p.r.hit(p.Rate) {
		return !v
	}
	return v
}

func (p *FlipPredictor) Update(pc int32, taken bool) { p.Inner.Update(pc, taken) }

// --- cache faults ---

// Mem is the memory-system surface the ILP simulator consumes
// (structurally identical to ilpsim.MemSystem and satisfied by
// *cache.Cache), re-declared here so the wrapper does not import the
// simulator.
type Mem interface {
	Access(addr uint32) bool
	Latency(addr uint32) int
	Stats() (accesses, misses uint64, missRate float64)
}

// FaultyMem wraps a memory system with two deterministic fault modes:
// delayed responses (ExtraLatency added with probability DelayRate) and
// corrupted responses (the accessed address has a random low bit flipped
// with probability CorruptRate before reaching the inner cache — the
// request observes the wrong line, perturbing both latency and
// replacement state).
type FaultyMem struct {
	Inner       Mem
	DelayRate   float64
	ExtraCycles int
	CorruptRate float64
	r           *rng

	delays, corruptions uint64
}

// NewFaultyMem wraps inner with the given fault rates under seed.
func NewFaultyMem(inner Mem, delayRate float64, extraCycles int, corruptRate float64, seed uint64) *FaultyMem {
	return &FaultyMem{Inner: inner, DelayRate: delayRate, ExtraCycles: extraCycles, CorruptRate: corruptRate, r: newRNG(seed)}
}

func (m *FaultyMem) perturb(addr uint32) uint32 {
	if m.r.hit(m.CorruptRate) {
		m.corruptions++
		addr ^= 1 << (m.r.next() % 16)
	}
	return addr
}

func (m *FaultyMem) Access(addr uint32) bool { return m.Inner.Access(m.perturb(addr)) }

func (m *FaultyMem) Latency(addr uint32) int {
	l := m.Inner.Latency(m.perturb(addr))
	if m.r.hit(m.DelayRate) {
		m.delays++
		l += m.ExtraCycles
	}
	return l
}

func (m *FaultyMem) Stats() (accesses, misses uint64, missRate float64) { return m.Inner.Stats() }

// Faults reports how many responses were delayed and corrupted.
func (m *FaultyMem) Faults() (delays, corruptions uint64) { return m.delays, m.corruptions }

// --- trace faults ---

// TruncateTrace returns a view of tr keeping only the first n dynamic
// instructions — a stream cut mid-flight. n is clamped to [0, len]; a
// zero-length result models a wholly lost stream (the simulators reject
// it with a structured validation error).
func TruncateTrace(tr *trace.Trace, n int) *trace.Trace {
	if n < 0 {
		n = 0
	}
	if n > len(tr.Ins) {
		n = len(tr.Ins)
	}
	return &trace.Trace{Prog: tr.Prog, Ins: tr.Ins[:n:n]}
}

// BitFlipTrace returns a deep copy of tr in which each dynamic
// instruction is, with probability rate, corrupted by one random bit
// flip in one of its fields (static index, opcode, direction, memory
// address, or result value). Corruptions that break referential
// integrity (static index out of range, opcode desynchronized from the
// program) are caught by trace validation in the simulators and come
// back as typed errors; the rest produce runnable-but-wrong streams the
// invariant audit must still bound.
func BitFlipTrace(tr *trace.Trace, rate float64, seed uint64) *trace.Trace {
	r := newRNG(seed)
	ins := make([]trace.DynInst, len(tr.Ins))
	copy(ins, tr.Ins)
	for i := range ins {
		if !r.hit(rate) {
			continue
		}
		switch r.next() % 5 {
		case 0:
			ins[i].Static ^= 1 << (r.next() % 31)
		case 1:
			ins[i].Op ^= 1 << (r.next() % 6)
		case 2:
			ins[i].Taken = !ins[i].Taken
		case 3:
			ins[i].MemAddr ^= 1 << (r.next() % 32)
		case 4:
			ins[i].Val ^= 1 << (r.next() % 32)
		}
	}
	return &trace.Trace{Prog: tr.Prog, Ins: ins}
}
