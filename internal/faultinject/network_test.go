package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestFaultyTransportDeterministic proves the fault schedule replays
// exactly under the same seed: two transports with identical settings
// classify an identical request stream identically.
func TestFaultyTransportDeterministic(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
	}))
	defer srv.Close()

	classify := func(seed uint64) []string {
		ft := NewFaultyTransport(http.DefaultTransport, 0, 0, 0.3, 0.2, 2, seed)
		var got []string
		for i := 0; i < 40; i++ {
			req, _ := http.NewRequest("GET", srv.URL, nil)
			resp, err := ft.RoundTrip(req)
			switch {
			case err != nil:
				got = append(got, "reset")
			case resp.StatusCode == 503:
				resp.Body.Close()
				got = append(got, "503")
			default:
				resp.Body.Close()
				got = append(got, "ok")
			}
		}
		return got
	}

	a, b := classify(42), classify(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at request %d: %q vs %q", i, a[i], b[i])
		}
	}
	c := classify(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 40-request fault schedules")
	}
}

// TestFaultyTransportResets checks reset errors unwrap to ECONNRESET
// (what retry classification keys on) and are counted.
func TestFaultyTransportResets(t *testing.T) {
	ft := NewFaultyTransport(http.DefaultTransport, 0, 0, 1.0, 0, 1, 7)
	req, _ := http.NewRequest("GET", "http://unreachable.invalid/", nil)
	_, err := ft.RoundTrip(req)
	if err == nil {
		t.Fatal("ResetRate=1 round trip succeeded")
	}
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Errorf("reset error %v does not unwrap to ECONNRESET", err)
	}
	if _, resets, _ := ft.Faults(); resets != 1 {
		t.Errorf("resets = %d, want 1", resets)
	}
}

// TestFaultyTransportBursts checks that one error hit opens a burst of
// BurstLen consecutive 503s with a parseable structured body, without
// touching the inner transport.
func TestFaultyTransportBursts(t *testing.T) {
	inner := roundTripperFunc(func(req *http.Request) (*http.Response, error) {
		t.Error("burst request leaked to the inner transport")
		return nil, errors.New("unreachable")
	})
	ft := NewFaultyTransport(inner, 0, 0, 0, 1.0, 3, 1)
	for i := 0; i < 3; i++ {
		req, _ := http.NewRequest("POST", "http://example.invalid/v1/jobs", nil)
		resp, err := ft.RoundTrip(req)
		if err != nil {
			t.Fatalf("burst request %d errored: %v", i, err)
		}
		if resp.StatusCode != 503 {
			t.Fatalf("burst request %d status %d, want 503", i, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if want := `"kind":"unavailable"`; !strings.Contains(string(body), want) {
			t.Errorf("burst body %q missing %s", body, want)
		}
	}
	if _, _, errs := ft.Faults(); errs != 3 {
		t.Errorf("errs5xx = %d, want 3", errs)
	}
}

// TestFaultyTransportLatency checks injected delay goes through the
// sleep seam with the configured duration.
func TestFaultyTransportLatency(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	ft := NewFaultyTransport(http.DefaultTransport, 1.0, 250*time.Millisecond, 0, 0, 1, 9)
	var slept []time.Duration
	ft.sleep = func(d time.Duration) { slept = append(slept, d) }
	req, _ := http.NewRequest("GET", srv.URL, nil)
	resp, err := ft.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(slept) != 1 || slept[0] != 250*time.Millisecond {
		t.Errorf("injected sleeps = %v, want one 250ms delay", slept)
	}
	if delays, _, _ := ft.Faults(); delays != 1 {
		t.Errorf("delays = %d, want 1", delays)
	}
}

type roundTripperFunc func(*http.Request) (*http.Response, error)

func (f roundTripperFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }
