package faultinject

import (
	"fmt"
	"io/fs"
	"os"
	"sync"
	"syscall"

	"deesim/internal/durable"
)

// FaultyFS wraps a durable.FS with seeded disk-fault injection — the
// fourth fault surface, covering the durability fabric itself. Every
// durable write site (superv/coord journals, server job documents,
// golden baselines) runs behind durable.FS, so threading a FaultyFS
// through a Config exercises the whole persist path hermetically:
//
//   - ENOSPC: NoSpace mode fails every write, create, and mkdir with
//     syscall.ENOSPC (durable.IsNoSpace-classifiable), simulating a
//     full disk that later drains;
//   - EIO on write/sync: WriteErrRate / SyncErrRate fail individual
//     operations with syscall.EIO;
//   - torn writes: TornWriteRate persists only a prefix of the buffer
//     and then fails — the crash-mid-write a journal's torn-tail
//     recovery must absorb;
//   - read-back bit rot: BitRotRate flips one deterministic bit in a
//     ReadFile result, which record sums and sidecar digests must
//     catch;
//   - rename failure: RenameErrRate fails the atomic-install step.
//
// All faults draw from one splitmix64 stream, so a failing seed
// replays exactly. Counters report how many faults actually fired.
type FaultyFS struct {
	Inner durable.FS

	mu            sync.Mutex
	r             *rng
	noSpace       bool
	writeErrRate  float64
	syncErrRate   float64
	tornWriteRate float64
	bitRotRate    float64
	renameErrRate float64

	// Injected-fault counters, one per fault class.
	NoSpaceHits int
	WriteErrs   int
	SyncErrs    int
	TornWrites  int
	BitRots     int
	RenameErrs  int
}

// NewFaultyFS wraps inner (nil = the real filesystem) with the given
// seed and no faults armed; arm individual fault classes with the
// setters.
func NewFaultyFS(inner durable.FS, seed uint64) *FaultyFS {
	return &FaultyFS{Inner: durable.Or(inner), r: newRNG(seed)}
}

// SetNoSpace arms or clears disk-full mode. While armed, every write,
// create, mkdir, and sync fails with ENOSPC; reads and removes still
// work, matching how a full disk behaves.
func (f *FaultyFS) SetNoSpace(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.noSpace = on
}

// SetWriteErrRate arms random EIO on a fraction of writes.
func (f *FaultyFS) SetWriteErrRate(rate float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeErrRate = rate
}

// SetSyncErrRate arms random EIO on a fraction of fsyncs.
func (f *FaultyFS) SetSyncErrRate(rate float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncErrRate = rate
}

// SetTornWriteRate arms torn writes: an affected write persists a
// prefix of the buffer and fails with EIO.
func (f *FaultyFS) SetTornWriteRate(rate float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tornWriteRate = rate
}

// SetBitRotRate arms read-back bit rot: an affected ReadFile returns
// the stored bytes with one bit flipped at a seeded offset.
func (f *FaultyFS) SetBitRotRate(rate float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.bitRotRate = rate
}

// SetRenameErrRate arms random EIO on a fraction of renames.
func (f *FaultyFS) SetRenameErrRate(rate float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.renameErrRate = rate
}

func (f *FaultyFS) OpenFile(name string, flag int, perm os.FileMode) (durable.File, error) {
	f.mu.Lock()
	creating := flag&os.O_CREATE != 0
	if f.noSpace && creating {
		f.NoSpaceHits++
		f.mu.Unlock()
		return nil, &os.PathError{Op: "open", Path: name, Err: syscall.ENOSPC}
	}
	f.mu.Unlock()
	inner, err := f.Inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, inner: inner}, nil
}

func (f *FaultyFS) ReadFile(name string) ([]byte, error) {
	data, err := f.Inner.ReadFile(name)
	if err != nil {
		return data, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(data) > 0 && f.r.hit(f.bitRotRate) {
		f.BitRots++
		rot := make([]byte, len(data))
		copy(rot, data)
		n := f.r.next()
		rot[n%uint64(len(rot))] ^= 1 << (n >> 32 % 8)
		return rot, nil
	}
	return data, nil
}

// RotFile flips one deterministic bit of the file's stored bytes in
// place — the persistent flavor of bit rot, for tests that corrupt an
// artifact and then restart the process that owns it. Returns the
// byte offset flipped.
func (f *FaultyFS) RotFile(name string) (int, error) {
	data, err := f.Inner.ReadFile(name)
	if err != nil {
		return 0, err
	}
	if len(data) == 0 {
		return 0, fmt.Errorf("rot %s: empty file", name)
	}
	f.mu.Lock()
	n := f.r.next()
	f.BitRots++
	f.mu.Unlock()
	off := int(n % uint64(len(data)))
	data[off] ^= 1 << (n >> 32 % 8)
	wf, err := f.Inner.OpenFile(name, os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return off, err
	}
	_, err = wf.Write(data)
	if cerr := wf.Close(); err == nil {
		err = cerr
	}
	return off, err
}

func (f *FaultyFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	if f.r.hit(f.renameErrRate) {
		f.RenameErrs++
		f.mu.Unlock()
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: syscall.EIO}
	}
	f.mu.Unlock()
	return f.Inner.Rename(oldpath, newpath)
}

func (f *FaultyFS) Remove(name string) error { return f.Inner.Remove(name) }

func (f *FaultyFS) MkdirAll(path string, perm os.FileMode) error {
	f.mu.Lock()
	if f.noSpace {
		f.NoSpaceHits++
		f.mu.Unlock()
		return &os.PathError{Op: "mkdir", Path: path, Err: syscall.ENOSPC}
	}
	f.mu.Unlock()
	return f.Inner.MkdirAll(path, perm)
}

func (f *FaultyFS) Stat(name string) (os.FileInfo, error)      { return f.Inner.Stat(name) }
func (f *FaultyFS) ReadDir(name string) ([]fs.DirEntry, error) { return f.Inner.ReadDir(name) }
func (f *FaultyFS) SyncDir(dir string) error                   { return f.Inner.SyncDir(dir) }

// faultyFile applies write/sync faults to one open file.
type faultyFile struct {
	fs    *FaultyFS
	inner durable.File
}

func (w *faultyFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	if w.fs.noSpace {
		w.fs.NoSpaceHits++
		w.fs.mu.Unlock()
		return 0, &os.PathError{Op: "write", Path: w.inner.Name(), Err: syscall.ENOSPC}
	}
	if w.fs.r.hit(w.fs.tornWriteRate) && len(p) > 1 {
		w.fs.TornWrites++
		cut := 1 + int(w.fs.r.next()%uint64(len(p)-1))
		w.fs.mu.Unlock()
		n, err := w.inner.Write(p[:cut])
		if err != nil {
			return n, err
		}
		return n, &os.PathError{Op: "write", Path: w.inner.Name(), Err: syscall.EIO}
	}
	if w.fs.r.hit(w.fs.writeErrRate) {
		w.fs.WriteErrs++
		w.fs.mu.Unlock()
		return 0, &os.PathError{Op: "write", Path: w.inner.Name(), Err: syscall.EIO}
	}
	w.fs.mu.Unlock()
	return w.inner.Write(p)
}

func (w *faultyFile) Sync() error {
	w.fs.mu.Lock()
	if w.fs.noSpace {
		w.fs.NoSpaceHits++
		w.fs.mu.Unlock()
		return &os.PathError{Op: "sync", Path: w.inner.Name(), Err: syscall.ENOSPC}
	}
	if w.fs.r.hit(w.fs.syncErrRate) {
		w.fs.SyncErrs++
		w.fs.mu.Unlock()
		return &os.PathError{Op: "sync", Path: w.inner.Name(), Err: syscall.EIO}
	}
	w.fs.mu.Unlock()
	return w.inner.Sync()
}

func (w *faultyFile) Close() error { return w.inner.Close() }
func (w *faultyFile) Name() string { return w.inner.Name() }
