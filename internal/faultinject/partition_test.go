package faultinject

import (
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"
)

// TestPartitionTransport: while open, every round trip fails with an
// error that unwraps to ECONNREFUSED (matching a real dial failure);
// healed, requests pass through untouched.
func TestPartitionTransport(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
	}))
	defer hs.Close()

	pt := NewPartitionTransport(nil)
	cl := &http.Client{Transport: pt}

	if pt.Partitioned() {
		t.Fatal("fresh transport is partitioned")
	}
	resp, err := cl.Get(hs.URL)
	if err != nil {
		t.Fatalf("healed round trip failed: %v", err)
	}
	resp.Body.Close()

	pt.Open()
	_, err = cl.Get(hs.URL)
	if err == nil {
		t.Fatal("partitioned round trip succeeded")
	}
	if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Errorf("partition error %v does not unwrap to ECONNREFUSED", err)
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		t.Error("refusal misreported as a timeout")
	}
	if pt.Refused() != 1 {
		t.Errorf("refused = %d, want 1", pt.Refused())
	}

	pt.Heal()
	resp, err = cl.Get(hs.URL)
	if err != nil {
		t.Fatalf("round trip after heal failed: %v", err)
	}
	resp.Body.Close()
	if pt.Refused() != 1 {
		t.Errorf("healed requests counted as refused: %d", pt.Refused())
	}
}
