package faultinject

import (
	"net/http"
	"sync"
	"syscall"
)

// PartitionTransport simulates a network partition: an
// http.RoundTripper that, while Open, fails every round trip
// immediately with an error wrapping syscall.ECONNREFUSED — the
// signature of an unreachable host — without touching the inner
// transport. Heal restores connectivity.
//
// Distributed-sweep tests wrap a worker client (or a heartbeater's
// client) with it to cut one node out of the fleet mid-sweep and prove
// the coordinator's heartbeat-staleness and lease-expiry paths
// re-dispatch the partitioned node's cells. Unlike FaultyTransport's
// probabilistic resets, a partition is a state, not an event: every
// request fails until the test heals it.
type PartitionTransport struct {
	Inner http.RoundTripper

	mu      sync.Mutex
	open    bool
	refused uint64
}

// NewPartitionTransport wraps inner (nil = http.DefaultTransport),
// initially healed.
func NewPartitionTransport(inner http.RoundTripper) *PartitionTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &PartitionTransport{Inner: inner}
}

// Open starts the partition: subsequent round trips are refused.
func (t *PartitionTransport) Open() {
	t.mu.Lock()
	t.open = true
	t.mu.Unlock()
}

// Heal ends the partition.
func (t *PartitionTransport) Heal() {
	t.mu.Lock()
	t.open = false
	t.mu.Unlock()
}

// Partitioned reports whether the partition is open.
func (t *PartitionTransport) Partitioned() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.open
}

// Refused reports how many round trips the partition has refused.
func (t *PartitionTransport) Refused() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.refused
}

// refusedErr wraps ECONNREFUSED so errors.Is(err, syscall.ECONNREFUSED)
// holds, matching a real dial failure's unwrap chain.
type refusedErr struct{}

func (refusedErr) Error() string   { return "faultinject: connection refused (partitioned)" }
func (refusedErr) Unwrap() error   { return syscall.ECONNREFUSED }
func (refusedErr) Timeout() bool   { return false }
func (refusedErr) Temporary() bool { return true }

// RoundTrip refuses while partitioned, defers to the inner transport
// otherwise.
func (t *PartitionTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	open := t.open
	if open {
		t.refused++
	}
	t.mu.Unlock()
	if open {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, refusedErr{}
	}
	return t.Inner.RoundTrip(req)
}
