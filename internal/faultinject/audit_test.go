package faultinject

import (
	"strings"
	"testing"

	"deesim/internal/bench"
	"deesim/internal/cache"
	"deesim/internal/ilpsim"
	"deesim/internal/predictor"
	"deesim/internal/runx"
	"deesim/internal/trace"
)

// auditTrace is a moderate synthetic trace shared by the audit
// scenarios: big enough to exercise every model's window machinery,
// small enough that scenarios × models × ETs stays fast.
func auditTrace(t *testing.T) *trace.Trace {
	t.Helper()
	prog, err := bench.BuildSynthetic(bench.SyntheticConfig{
		Iterations: 1200, BranchesPerIter: 3, Bias: 85, Seed: 17, Work: 3,
	})
	if err != nil {
		t.Fatalf("build synthetic: %v", err)
	}
	tr, err := trace.Record(prog, 20_000)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	return tr
}

func mustCache(t *testing.T) *cache.Cache {
	t.Helper()
	cfg := cache.Default16K()
	c, err := cache.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestAuditUnderInjectors is the invariant-audit suite the hardened
// runtime must pass: under every fault injector, every paper model at
// every resource level either returns a result satisfying the
// structural invariants (CheckInvariants against the same simulation's
// oracle) or fails with a typed *runx.Error — never a panic, never a
// silently inconsistent result.
func TestAuditUnderInjectors(t *testing.T) {
	tr := auditTrace(t)
	ets := []int{16, 64}

	scenarios := []struct {
		name string
		sim  func(t *testing.T) (*ilpsim.Sim, error)
	}{
		{"clean", func(t *testing.T) (*ilpsim.Sim, error) {
			return ilpsim.New(tr, predictor.NewTwoBit(), ilpsim.Options{Penalty: 1})
		}},
		{"flip-25%", func(t *testing.T) (*ilpsim.Sim, error) {
			p := NewFlipPredictor(predictor.NewTwoBit(), 0.25, 1)
			return ilpsim.New(tr, p, ilpsim.Options{Penalty: 1})
		}},
		{"flip-100%", func(t *testing.T) (*ilpsim.Sim, error) {
			p := NewFlipPredictor(predictor.NewTwoBit(), 1.0, 2)
			return ilpsim.New(tr, p, ilpsim.Options{Penalty: 1})
		}},
		{"faulty-cache", func(t *testing.T) (*ilpsim.Sim, error) {
			m := NewFaultyMem(mustCache(t), 0.3, 50, 0.2, 7)
			return ilpsim.New(tr, predictor.NewTwoBit(), ilpsim.Options{Penalty: 1, Mem: m})
		}},
		{"truncated-trace", func(t *testing.T) (*ilpsim.Sim, error) {
			return ilpsim.New(TruncateTrace(tr, len(tr.Ins)/2), predictor.NewTwoBit(), ilpsim.Options{Penalty: 1})
		}},
		{"bit-flipped-trace", func(t *testing.T) (*ilpsim.Sim, error) {
			return ilpsim.New(BitFlipTrace(tr, 0.01, 3), predictor.NewTwoBit(), ilpsim.Options{Penalty: 1})
		}},
	}

	// requireTyped asserts a failure is a structured *runx.Error, the
	// contract for every non-nil error out of the hardened entry points.
	requireTyped := func(t *testing.T, err error, where string) {
		t.Helper()
		if _, ok := runx.As(err); !ok {
			t.Fatalf("%s: error is not a *runx.Error: %v", where, err)
		}
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			sim, err := sc.sim(t)
			if err != nil {
				// Construction may legitimately reject corrupted input
				// (e.g. a bit-flipped trace failing validation) — but only
				// with a typed error.
				requireTyped(t, err, "New")
				return
			}
			oracle := sim.Oracle()
			if err := ilpsim.CheckInvariants(oracle, nil); err != nil {
				t.Fatalf("oracle violates invariants: %v", err)
			}
			for _, m := range ilpsim.PaperModels {
				for _, et := range ets {
					r, err := sim.RunContext(t.Context(), m, et)
					if err != nil {
						requireTyped(t, err, m.String())
						continue
					}
					if err := ilpsim.CheckInvariants(r, &oracle); err != nil {
						t.Errorf("%s/%v/ET=%d: %v", sc.name, m, et, err)
					}
				}
			}
		})
	}
}

// TestAuditMonotonicCleanSweep checks coverage monotonicity on an
// uninjected run: for each paper model, speedup over an ascending ET
// sweep never drops by more than AuditTolerance.
func TestAuditMonotonicCleanSweep(t *testing.T) {
	tr := auditTrace(t)
	sim, err := ilpsim.New(tr, predictor.NewTwoBit(), ilpsim.Options{Penalty: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ilpsim.PaperModels {
		var rs []ilpsim.Result
		for _, et := range []int{4, 16, 64, 256} {
			r, err := sim.RunContext(t.Context(), m, et)
			if err != nil {
				t.Fatalf("%v/ET=%d: %v", m, et, err)
			}
			rs = append(rs, r)
		}
		if err := ilpsim.CheckMonotonic(rs); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
}

// TestWatchdogTripsOnHostileInjector starves the simulator of forward
// progress — a flip-everything predictor plus an absurd restart penalty
// — and checks the watchdog converts the stall into a structured
// deadlock error naming the model, resource level, and stalled cycle,
// with a runtime snapshot attached.
func TestWatchdogTripsOnHostileInjector(t *testing.T) {
	tr := auditTrace(t)
	p := NewFlipPredictor(predictor.NewTwoBit(), 1.0, 9)
	sim, err := ilpsim.New(tr, p, ilpsim.Options{Penalty: 100_000, DeadlockLimit: 256})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run(ilpsim.ModelSP, 4)
	if err == nil {
		t.Fatal("hostile injector did not trip the watchdog")
	}
	re, ok := runx.As(err)
	if !ok {
		t.Fatalf("not a *runx.Error: %v", err)
	}
	if re.Kind != runx.KindDeadlock {
		t.Fatalf("kind = %v, want KindDeadlock (err: %v)", re.Kind, err)
	}
	if re.Model != "SP" {
		t.Errorf("error does not name the model: %q", re.Model)
	}
	if re.ET != 4 {
		t.Errorf("error does not name the resource level: %d", re.ET)
	}
	if re.Cycle <= 0 {
		t.Errorf("error does not name the stalled cycle: %d", re.Cycle)
	}
	if re.Snap == nil {
		t.Error("deadlock error carries no runtime snapshot")
	}
	if !strings.Contains(err.Error(), "no forward progress") {
		t.Errorf("error does not describe the stall: %v", err)
	}
}
