package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"deesim/internal/durable"
	"deesim/internal/runx"
)

func TestFaultyFSNoSpace(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultyFS(nil, 1)
	ffs.SetNoSpace(true)

	if err := durable.WriteFileAtomic(ffs, filepath.Join(dir, "a.json"), []byte("x")); err == nil {
		t.Fatal("write under ENOSPC succeeded")
	} else if !durable.IsNoSpace(err) {
		t.Fatalf("ENOSPC write classified as %v", err)
	}
	if err := ffs.MkdirAll(filepath.Join(dir, "sub"), 0o755); !durable.IsNoSpace(err) {
		t.Fatalf("mkdir under ENOSPC: %v", err)
	}
	if ffs.NoSpaceHits == 0 {
		t.Error("no-space counter never fired")
	}
	// Reads still work on a full disk.
	if err := os.WriteFile(filepath.Join(dir, "b.json"), []byte("y"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := ffs.ReadFile(filepath.Join(dir, "b.json")); err != nil || string(got) != "y" {
		t.Errorf("read under ENOSPC: %q, %v", got, err)
	}
	// Clearing the fault heals the path.
	ffs.SetNoSpace(false)
	if err := durable.WriteFileAtomic(ffs, filepath.Join(dir, "a.json"), []byte("x")); err != nil {
		t.Fatalf("write after clearing ENOSPC: %v", err)
	}
}

func TestFaultyFSTornWritePersistsPrefix(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultyFS(nil, 42)
	ffs.SetTornWriteRate(1)
	path := filepath.Join(dir, "torn.bin")
	f, err := ffs.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789abcdef")
	n, werr := f.Write(payload)
	f.Close()
	if werr == nil {
		t.Fatal("torn write reported success")
	}
	if !errors.Is(werr, syscall.EIO) {
		t.Fatalf("torn write error %v, want EIO", werr)
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("torn write persisted %d of %d bytes, want a strict prefix", n, len(payload))
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != string(payload[:n]) {
		t.Errorf("on-disk %q, want prefix %q", got, payload[:n])
	}
	if ffs.TornWrites != 1 {
		t.Errorf("TornWrites = %d", ffs.TornWrites)
	}
}

func TestFaultyFSWriteAndSyncErrors(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultyFS(nil, 7)
	ffs.SetWriteErrRate(1)
	f, err := ffs.OpenFile(filepath.Join(dir, "w.bin"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.EIO) {
		t.Errorf("write fault: %v", err)
	}
	f.Close()
	ffs.SetWriteErrRate(0)
	ffs.SetSyncErrRate(1)
	f, err = ffs.OpenFile(filepath.Join(dir, "s.bin"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Errorf("sync fault: %v", err)
	}
	f.Close()
	if ffs.WriteErrs != 1 || ffs.SyncErrs != 1 {
		t.Errorf("counters: writes=%d syncs=%d", ffs.WriteErrs, ffs.SyncErrs)
	}
}

func TestFaultyFSBitRotCaughtByVerifiedRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")
	if err := durable.WriteFileAtomic(nil, path, []byte(`{"v":"payload"}`)); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultyFS(nil, 99)
	ffs.SetBitRotRate(1)
	// Every read comes back rotted — either in the artifact or in its
	// sidecar — and the verified read must refuse it either way.
	if _, err := durable.ReadFileVerified(ffs, path); !runx.IsKind(err, runx.KindCorrupt) {
		t.Fatalf("rotted read returned %v, want KindCorrupt", err)
	}
	if ffs.BitRots == 0 {
		t.Error("bit-rot counter never fired")
	}
	// The rot is read-back only: the stored bytes are intact, so the
	// real filesystem still verifies.
	if _, err := durable.ReadFileVerified(nil, path); err != nil {
		t.Errorf("stored bytes damaged: %v", err)
	}
}

func TestFaultyFSRotFilePersistsDamage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")
	if err := durable.WriteFileAtomic(nil, path, []byte(`{"v":"payload"}`)); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultyFS(nil, 5)
	if _, err := ffs.RotFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := durable.ReadFileVerified(nil, path); !runx.IsKind(err, runx.KindCorrupt) {
		t.Fatalf("persisted rot returned %v, want KindCorrupt", err)
	}
}

func TestFaultyFSRenameError(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "a")
	if err := os.WriteFile(old, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultyFS(nil, 3)
	ffs.SetRenameErrRate(1)
	if err := ffs.Rename(old, filepath.Join(dir, "b")); !errors.Is(err, syscall.EIO) {
		t.Errorf("rename fault: %v", err)
	}
	if _, err := os.Stat(old); err != nil {
		t.Errorf("failed rename moved the file anyway: %v", err)
	}
}

// TestFaultyFSDeterministic: two instances with the same seed inject
// the same faults at the same operations.
func TestFaultyFSDeterministic(t *testing.T) {
	run := func(seed uint64) []bool {
		dir := t.TempDir()
		ffs := NewFaultyFS(nil, seed)
		ffs.SetWriteErrRate(0.5)
		var hits []bool
		for i := 0; i < 32; i++ {
			f, err := ffs.OpenFile(filepath.Join(dir, "f"), os.O_WRONLY|os.O_CREATE, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			_, werr := f.Write([]byte("x"))
			f.Close()
			hits = append(hits, werr != nil)
		}
		return hits
	}
	a, b := run(1234), run(1234)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
}
