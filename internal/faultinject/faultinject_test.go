package faultinject

import (
	"testing"

	"deesim/internal/bench"
	"deesim/internal/cache"
	"deesim/internal/predictor"
	"deesim/internal/trace"
)

func testTrace(t *testing.T) *trace.Trace {
	t.Helper()
	prog, err := bench.BuildSynthetic(bench.DefaultSynthetic())
	if err != nil {
		t.Fatalf("build synthetic: %v", err)
	}
	tr, err := trace.Record(prog, 1<<16)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	return tr
}

func TestFlipPredictorDeterministicAndRateZeroIdentity(t *testing.T) {
	mk := func(rate float64, seed uint64) []bool {
		p := NewFlipPredictor(predictor.NewTwoBit(), rate, seed)
		out := make([]bool, 0, 256)
		for i := 0; i < 256; i++ {
			pc := int32(i % 17)
			out = append(out, p.Predict(pc))
			p.Update(pc, i%3 == 0)
		}
		return out
	}
	a, b := mk(0.5, 42), mk(0.5, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	plain := func() []bool {
		p := predictor.NewTwoBit()
		out := make([]bool, 0, 256)
		for i := 0; i < 256; i++ {
			pc := int32(i % 17)
			out = append(out, p.Predict(pc))
			p.Update(pc, i%3 == 0)
		}
		return out
	}()
	zero := mk(0, 7)
	for i := range plain {
		if plain[i] != zero[i] {
			t.Fatalf("rate 0 is not the identity at %d", i)
		}
	}
	flipped := mk(1.0, 7)
	for i := range plain {
		if plain[i] == flipped[i] {
			t.Fatalf("rate 1 did not flip prediction %d", i)
		}
	}
}

func TestFaultyMemDelaysAndCorrupts(t *testing.T) {
	c, err := cache.New(cache.Config{SizeBytes: 1 << 10, LineBytes: 16, Ways: 1, HitLatency: 1, MissLatency: 10})
	if err != nil {
		t.Fatal(err)
	}
	m := NewFaultyMem(c, 0.5, 100, 0.5, 99)
	var boosted int
	for i := 0; i < 1000; i++ {
		if m.Latency(uint32(i*4)) >= 100 {
			boosted++
		}
	}
	delays, corruptions := m.Faults()
	if delays == 0 || corruptions == 0 {
		t.Fatalf("no faults fired: delays=%d corruptions=%d", delays, corruptions)
	}
	if boosted == 0 {
		t.Fatal("ExtraCycles never observed in latency")
	}
	// Stats pass through to the inner cache.
	if acc, _, _ := m.Stats(); acc == 0 {
		t.Fatal("stats not passed through")
	}

	// Rate zero is a transparent wrapper.
	c2, _ := cache.New(cache.Config{SizeBytes: 1 << 10, LineBytes: 16, Ways: 1, HitLatency: 1, MissLatency: 10})
	c3, _ := cache.New(cache.Config{SizeBytes: 1 << 10, LineBytes: 16, Ways: 1, HitLatency: 1, MissLatency: 10})
	clean := NewFaultyMem(c2, 0, 0, 0, 1)
	for i := 0; i < 1000; i++ {
		if clean.Latency(uint32(i*8)) != c3.Latency(uint32(i*8)) {
			t.Fatalf("zero-rate wrapper diverged at access %d", i)
		}
	}
}

func TestTruncateTraceClamps(t *testing.T) {
	tr := testTrace(t)
	n := len(tr.Ins)
	if got := TruncateTrace(tr, n/2); len(got.Ins) != n/2 {
		t.Fatalf("half truncation: got %d, want %d", len(got.Ins), n/2)
	}
	if got := TruncateTrace(tr, -5); len(got.Ins) != 0 {
		t.Fatal("negative n not clamped to 0")
	}
	if got := TruncateTrace(tr, n+100); len(got.Ins) != n {
		t.Fatal("overlong n not clamped to len")
	}
	if TruncateTrace(tr, n/2).Prog != tr.Prog {
		t.Fatal("program pointer not preserved")
	}
}

func TestBitFlipTraceDeterministicAndNonDestructive(t *testing.T) {
	tr := testTrace(t)
	orig := make([]trace.DynInst, len(tr.Ins))
	copy(orig, tr.Ins)

	a := BitFlipTrace(tr, 0.25, 123)
	b := BitFlipTrace(tr, 0.25, 123)
	var diffs int
	for i := range a.Ins {
		if a.Ins[i] != b.Ins[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
		if a.Ins[i] != orig[i] {
			diffs++
		}
	}
	if diffs == 0 {
		t.Fatal("rate 0.25 flipped nothing")
	}
	// The source trace must be untouched.
	for i := range tr.Ins {
		if tr.Ins[i] != orig[i] {
			t.Fatalf("BitFlipTrace mutated its input at %d", i)
		}
	}
	clean := BitFlipTrace(tr, 0, 5)
	for i := range clean.Ins {
		if clean.Ins[i] != orig[i] {
			t.Fatalf("rate 0 is not the identity at %d", i)
		}
	}
}
