// Command deesimd is the fault-tolerant simulation service: an
// HTTP/JSON daemon that accepts sweep submissions (POST /v1/jobs),
// runs them as crash-safe journaled sweeps on a bounded worker pool,
// and sheds load with 429 + Retry-After when its admission queue is
// full.
//
// Usage:
//
//	deesimd [-addr 127.0.0.1:8425] [-addr-file path] [-state dir]
//	        [-queue N] [-batch-queue N] [-brownout-watermark N]
//	        [-workers N] [-cell-jobs N]
//	        [-cell-slots N] [-cell-timeout d]
//	        [-coord url] [-self-url url] [-heartbeat d]
//	        [-job-timeout d] [-request-timeout d] [-drain-grace d]
//	        [-retry-after d] [-retries N] [-backoff d]
//	        [-retry-budget N] [-retry-budget-refill F]
//	        [-memo-dir path] [-memo-mem bytes]
//	        [-log-level info] [-log-json] [-metrics-out path]
//	        [-flight-out path] [-pprof] [-version] [-fsck]
//
// Overload policy: submissions carry a priority class ("interactive",
// the default, or "batch") and admit against separate queues (-queue
// for interactive, -batch-queue for batch). As interactive occupancy
// climbs past -brownout-watermark the daemon browns out progressively
// — shed batch first, then defer all new work, and under low-disk
// degradation serve reads only — always with Retry-After on the shed.
// -retry-budget caps total cell-retry amplification across the daemon
// (token bucket refilled at -retry-budget-refill tokens/sec; 0 =
// unlimited, the historical behavior).
//
// Fleet mode: with -coord the daemon also serves leased distributed-
// sweep cells (POST /v1/cells, bounded by -cell-slots) and registers
// with the given deesim-coord coordinator, heartbeating its tri-state
// (ready/busy/draining) so the coordinator stops leasing to it the
// moment a drain begins. -self-url is the base URL the coordinator
// should dial back (defaults to http://<bound addr>).
//
// Telemetry: GET /metrics serves the whole process's series (simulator
// core, supervisor, server) in Prometheus text format, GET /versionz
// the build info, and -pprof opts into /debug/pprof/. Every request is
// access-logged as one structured line (-log-json for JSON logs).
// -metrics-out snapshots the registry to a file — written immediately
// when SIGINT/SIGTERM arrives, not only on clean exit, so a drain cut
// short still leaves telemetry behind.
//
// Tracing and the black box: every traced request's span fragments are
// appended to <state>/fragments.jsonl and served back over GET
// /v1/tracefrag, so a coordinator can merge the fleet's fragments into
// one timeline (deesimctl trace fetch). The always-on flight recorder
// is dumped to -flight-out (default <state>/flight.json) on panic,
// SIGQUIT, and nonzero exit, and a snapshot is persisted continuously
// — even a SIGKILL leaves a dump naming the cells that were in flight.
//
// SIGINT/SIGTERM drains gracefully: admission closes (submissions get
// 503, /readyz reports "draining"), running jobs get -drain-grace to
// finish, then their contexts are canceled — progress stays journaled.
// The process then exits 0; a second signal kills it immediately. On
// the next start the state directory is scanned and every incomplete
// job resumes from its journal, replaying finished cells.
//
// -addr-file, when set, receives the bound listen address (useful with
// -addr 127.0.0.1:0 in tests and scripts).
//
// With -fsck the daemon does not serve: it integrity-checks the -state
// directory (digest sidecars, journal replay, quarantine contents),
// prints per-artifact verdicts, and exits — corrupt-kind code if
// anything is corrupt or quarantined. Run it on a stopped daemon's
// state before restarting after suspected disk trouble.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"deesim/internal/budget"
	"deesim/internal/coord"
	"deesim/internal/fsck"
	"deesim/internal/memo"
	"deesim/internal/obs"
	"deesim/internal/runx"
	"deesim/internal/server"
	"deesim/internal/superv"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("deesimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addrFlag     = fs.String("addr", "127.0.0.1:8425", "listen address (host:port; port 0 picks a free one)")
		addrFileFlag = fs.String("addr-file", "", "write the bound listen address to this file once serving")
		stateFlag    = fs.String("state", "deesimd.state", "durable state directory (job specs, journals, results)")
		queueFlag    = fs.Int("queue", 8, "interactive admission-queue depth; submissions beyond it are shed with 429")
		batchQueue   = fs.Int("batch-queue", 0, "batch admission-queue depth (0 = half of -queue)")
		brownoutWM   = fs.Int("brownout-watermark", 0, "interactive occupancy at which batch submissions shed (0 = half of -queue)")
		workersFlag  = fs.Int("workers", 1, "jobs run concurrently")
		cellJobsFlag = fs.Int("cell-jobs", 4, "worker-pool size inside each job's matrix sweep")
		cellSlots    = fs.Int("cell-slots", 0, "concurrently-leased distributed-sweep cells served (0 = cell-jobs)")
		cellTimeout  = fs.Duration("cell-timeout", 5*time.Minute, "execution cap per leased cell")
		coordFlag    = fs.String("coord", "", "deesim-coord base URL to register with (enables fleet mode)")
		selfURLFlag  = fs.String("self-url", "", "base URL the coordinator dials back (default http://<bound addr>)")
		hbEvery      = fs.Duration("heartbeat", 0, "heartbeat cadence to the coordinator (0 = coordinator-assigned)")
		jobTimeout   = fs.Duration("job-timeout", 0, "default wall-clock cap per job (0 = none; specs may set tighter)")
		reqTimeout   = fs.Duration("request-timeout", 10*time.Second, "per-HTTP-request deadline")
		drainGrace   = fs.Duration("drain-grace", 15*time.Second, "how long a drain lets running jobs finish before canceling")
		retryAfter   = fs.Duration("retry-after", 2*time.Second, "Retry-After hint sent with 429/503")
		retriesFlag  = fs.Int("retries", 2, "default per-cell retries for retryable failures")
		backoffFlag  = fs.Duration("backoff", 250*time.Millisecond, "default base retry backoff per cell")
		retryBudget  = fs.Int("retry-budget", 0, "total retry tokens shared across all sweeps (0 = unlimited)")
		budgetRefill = fs.Float64("retry-budget-refill", 0, "retry-budget refill rate in tokens/sec")
		memoDir      = fs.String("memo-dir", "", "content-addressed result-cache directory (empty = caching off)")
		memoMem      = fs.Int64("memo-mem", 0, "in-memory result-cache budget in bytes (0 = 64 MiB; effective with -memo-dir)")
		pprofFlag    = fs.Bool("pprof", false, "expose /debug/pprof/ profiling endpoints (debug surface; off by default)")
		fsckFlag     = fs.Bool("fsck", false, "integrity-check the -state directory and exit (do not serve)")
	)
	obsFlags := obs.RegisterCLIFlags(fs)
	if err := fs.Parse(args); err != nil {
		return runx.ExitUsage
	}
	if done, err := obsFlags.Handle("deesimd", stdout, stderr); done {
		return runx.ExitOK
	} else if err != nil {
		fmt.Fprintln(stderr, "deesimd:", err)
		return runx.ExitCode(err)
	}
	logger := log.New(stderr, "", log.LstdFlags|log.Lmicroseconds)
	fail := func(err error) int {
		logger.Printf("deesimd: %v", err)
		code := runx.ExitCode(err)
		// Every typed failure leaves the black box behind (no-op
		// without -flight-out, which serving mode defaults into -state).
		obsFlags.DumpFlightOnExit("deesimd", code)
		return code
	}
	defer func() {
		if err := obsFlags.WriteMetrics(); err != nil {
			logger.Printf("deesimd: %v", err)
		}
	}()
	stopFlush := obsFlags.FlushOnSignal(logger.Printf)
	defer stopFlush()

	slogger, err := obs.SetupLogger(stderr, obsFlags.LogLevel, obsFlags.LogJSON)
	if err != nil {
		return fail(err)
	}

	if *fsckFlag {
		r, err := fsck.Dir(nil, *stateFlag)
		if err != nil {
			return fail(err)
		}
		r.Render(stdout)
		if err := r.Err(); err != nil {
			return fail(err)
		}
		return runx.ExitOK
	}

	// Flight recorder: default the black box into the state directory,
	// dump it on panic and SIGQUIT, and persist a periodic snapshot so
	// even SIGKILL leaves a dump naming the in-flight cells.
	obsFlags.DefaultFlightOut(filepath.Join(*stateFlag, "flight.json"))
	defer obsFlags.DumpFlightOnPanic("deesimd")
	stopQuit := obsFlags.WatchQuit("deesimd", logger.Printf)
	defer stopQuit()
	frCtx, frStop := context.WithCancel(context.Background())
	defer frStop()
	go obs.Flight.Persist(frCtx, obsFlags.FlightOut, "deesimd", 0)

	// Span fragments: this process's half of every distributed trace,
	// served back to the coordinator over GET /v1/tracefrag.
	frags, err := obs.OpenFragmentLog(filepath.Join(*stateFlag, "fragments.jsonl"), "deesimd")
	if err != nil {
		return fail(runx.Newf(runx.KindUnknown, "deesimd", "open fragment log: %v", err))
	}
	defer frags.Close()

	var bud *budget.Budget
	if *retryBudget > 0 {
		bud = budget.New(*retryBudget, *budgetRefill)
	}
	var mm *memo.Memo
	if *memoDir != "" {
		if mm, err = memo.New(memo.Config{Dir: *memoDir, MemBytes: *memoMem}); err != nil {
			return fail(err)
		}
	}
	s, err := server.New(server.Config{
		StateDir:          *stateFlag,
		QueueDepth:        *queueFlag,
		BatchQueueDepth:   *batchQueue,
		BrownoutWatermark: *brownoutWM,
		Budget:            bud,
		Workers:           *workersFlag,
		CellJobs:          *cellJobsFlag,
		CellSlots:         *cellSlots,
		CellTimeout:       *cellTimeout,
		JobTimeout:        *jobTimeout,
		RequestTimeout:    *reqTimeout,
		DrainGrace:        *drainGrace,
		RetryAfter:        *retryAfter,
		Retries:           *retriesFlag,
		Backoff:           *backoffFlag,
		Logf:              logger.Printf,
		Logger:            slogger,
		Pprof:             *pprofFlag,
		Memo:              mm,
		Frags:             frags,
	})
	if err != nil {
		return fail(err)
	}

	ln, err := net.Listen("tcp", *addrFlag)
	if err != nil {
		return fail(runx.Newf(runx.KindUnavailable, "deesimd", "listen %s: %v", *addrFlag, err))
	}
	if *addrFileFlag != "" {
		if err := superv.WriteFileAtomic(*addrFileFlag, []byte(ln.Addr().String()+"\n")); err != nil {
			ln.Close()
			return fail(err)
		}
	}

	s.Start()
	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logger.Printf("deesimd: serving on http://%s (state %s, queue %d, workers %d)",
		ln.Addr(), *stateFlag, *queueFlag, *workersFlag)
	fmt.Fprintln(stdout, ln.Addr().String())

	// Fleet mode: join the coordinator and keep beating until shutdown.
	hbCtx, hbStop := context.WithCancel(context.Background())
	defer hbStop()
	if *coordFlag != "" {
		selfURL := *selfURLFlag
		if selfURL == "" {
			selfURL = "http://" + ln.Addr().String()
		}
		hb := &coord.Heartbeater{
			CoordURL: *coordFlag,
			SelfURL:  selfURL,
			Slots:    s.CellSlots(),
			Every:    *hbEvery,
			State: func() (string, int) {
				return s.WorkerState(), s.CellsActive()
			},
			Logf: logger.Printf,
		}
		go hb.Run(hbCtx)
	}

	ctx, stop := runx.MainContext(0)
	select {
	case <-ctx.Done():
		// First signal: drain. stop() restores the default handler so a
		// second signal kills the process outright. The heartbeater keeps
		// beating through the drain so the coordinator sees "draining"
		// and stops leasing here before the listener closes.
		stop()
		logger.Printf("deesimd: signal received, draining")
		if err := s.Drain(context.Background()); err != nil {
			return fail(err)
		}
		hbStop()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logger.Printf("deesimd: http shutdown: %v", err)
		}
		logger.Printf("deesimd: drained, exiting")
		return runx.ExitOK
	case err := <-serveErr:
		stop()
		s.Close()
		return fail(runx.Newf(runx.KindUnavailable, "deesimd", "serve: %v", err))
	}
}
