package main

// End-to-end crash tests against the real deesimd binary: build it,
// run it as a subprocess, kill it mid-sweep, and prove the restarted
// daemon finishes the job with a byte-identical result. These are the
// only tests in the repo that exercise the full process boundary —
// SIGKILL, SIGTERM, exit codes — rather than in-process servers.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"deesim/internal/client"
	"deesim/internal/durable"
	"deesim/internal/server"
	"deesim/internal/superv"
)

var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "deesimd-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mktemp:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	binPath = filepath.Join(dir, "deesimd")
	if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "build deesimd: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// daemon is one running deesimd subprocess.
type daemon struct {
	cmd  *exec.Cmd
	addr string
	log  string // log file path, appended across restarts
}

// startDaemon launches deesimd against stateDir on an ephemeral port
// and waits for it to publish its address.
func startDaemon(t *testing.T, stateDir string, extra ...string) *daemon {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	logPath := filepath.Join(stateDir, "..", filepath.Base(stateDir)+".log")
	logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer logf.Close()
	args := append([]string{
		"-addr", "127.0.0.1:0", "-addr-file", addrFile, "-state", stateDir,
		"-cell-jobs", "1",
	}, extra...)
	cmd := exec.Command(binPath, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		t.Fatalf("start deesimd: %v", err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(bytes.TrimSpace(data)) > 0 {
			return &daemon{cmd: cmd, addr: strings.TrimSpace(string(data)), log: logPath}
		}
		if time.Now().After(deadline) {
			t.Fatalf("deesimd never published its address (log: %s)", readLog(logPath))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func readLog(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return err.Error()
	}
	return string(data)
}

// waitExit waits for the daemon process with a timeout, returning its
// exit code.
func (d *daemon) waitExit(t *testing.T, timeout time.Duration) int {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatalf("wait deesimd: %v", err)
		return -1
	case <-time.After(timeout):
		d.cmd.Process.Kill()
		t.Fatalf("deesimd did not exit within %s (log: %s)", timeout, readLog(d.log))
		return -1
	}
}

func (d *daemon) client() *client.Client {
	c := client.New("http://" + d.addr)
	c.Retry = superv.RetryPolicy{Attempts: 6, Backoff: 50 * time.Millisecond}
	return c
}

func e2eSpec(cellDelay string) server.Spec {
	return server.Spec{
		Workloads: []string{"xlisp"},
		Models:    []string{"SP", "DEE-CD-MF"},
		Resources: []int{8, 64},
		MaxInstrs: 3000,
		CellDelay: cellDelay,
	}
}

func TestKillAndRestartResumesByteIdentical(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	// Control: the same sweep, uninterrupted, on a throwaway daemon.
	controlDir := filepath.Join(t.TempDir(), "control")
	ctl := startDaemon(t, controlDir)
	c := ctl.client()
	st, err := c.Submit(ctx, e2eSpec(""))
	if err != nil {
		t.Fatalf("control submit: %v", err)
	}
	if _, err := c.Wait(ctx, st.ID, 50*time.Millisecond); err != nil {
		t.Fatalf("control wait: %v\nlog: %s", err, readLog(ctl.log))
	}
	control, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("control result: %v", err)
	}
	// SIGTERM with nothing running must exit 0 promptly.
	ctl.cmd.Process.Signal(syscall.SIGTERM)
	if code := ctl.waitExit(t, 20*time.Second); code != 0 {
		t.Fatalf("idle drain exited %d, want 0\nlog: %s", code, readLog(ctl.log))
	}

	// Crash run: pace the sweep so SIGKILL lands mid-job, with at least
	// one cell journaled and at least one still outstanding.
	crashDir := filepath.Join(t.TempDir(), "crash")
	d := startDaemon(t, crashDir)
	c = d.client()
	st, err = c.Submit(ctx, e2eSpec("600ms"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	id := st.ID
	for {
		cur, err := c.Status(ctx, id)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if cur.CellsDone >= 1 && cur.CellsDone < cur.CellsTotal {
			break
		}
		if cur.State == server.StateDone {
			t.Fatal("sweep finished before it could be killed; raise cell_delay")
		}
		if ctx.Err() != nil {
			t.Fatalf("never reached mid-sweep state (last: %+v)", cur)
		}
		time.Sleep(10 * time.Millisecond)
	}
	d.cmd.Process.Kill() // SIGKILL: no drain, no journal flush beyond what's already fsync'd
	d.cmd.Wait()

	// Restart over the same state directory: the job must be recovered,
	// resumed from its journal, and finish with the identical result.
	d2 := startDaemon(t, crashDir)
	c = d2.client()
	final, err := c.Wait(ctx, id, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("wait after restart: %v\nlog: %s", err, readLog(d2.log))
	}
	if !final.Resumed {
		t.Errorf("job status after restart not marked resumed: %+v", final)
	}
	resumed, err := c.Result(ctx, id)
	if err != nil {
		t.Fatalf("result after restart: %v", err)
	}
	if !bytes.Equal(resumed, control) {
		t.Fatalf("resumed result differs from uninterrupted control run\ncontrol %d bytes, resumed %d bytes", len(control), len(resumed))
	}
	// The journal must prove this was a genuine resume, not a rerun
	// from scratch: some cells recorded before the kill.
	jst, err := superv.Load(filepath.Join(crashDir, "jobs", id, "run.journal"))
	if err != nil {
		t.Fatalf("load journal: %v", err)
	}
	if len(jst.Done) < final.CellsTotal {
		t.Fatalf("journal has %d done cells, want all %d", len(jst.Done), final.CellsTotal)
	}
	d2.cmd.Process.Signal(syscall.SIGTERM)
	if code := d2.waitExit(t, 20*time.Second); code != 0 {
		t.Fatalf("final drain exited %d, want 0", code)
	}
}

func TestSigtermMidSweepDrainsAndExitsZero(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	stateDir := filepath.Join(t.TempDir(), "state")
	d := startDaemon(t, stateDir, "-drain-grace", "300ms")
	c := d.client()
	st, err := c.Submit(ctx, e2eSpec("30s")) // effectively unfinishable
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	for {
		cur, err := c.Status(ctx, st.ID)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if cur.CellsDone >= 1 {
			break
		}
		if ctx.Err() != nil {
			t.Fatal("sweep never started")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// SIGTERM during the active sweep: the daemon must close admission,
	// give the job its (short) grace, cancel it with progress journaled,
	// and exit 0 — the acceptance contract for graceful drain.
	d.cmd.Process.Signal(syscall.SIGTERM)
	if code := d.waitExit(t, 30*time.Second); code != 0 {
		t.Fatalf("drain under load exited %d, want 0\nlog: %s", code, readLog(d.log))
	}
	jst, err := superv.Load(filepath.Join(stateDir, "jobs", st.ID, "run.journal"))
	if err != nil {
		t.Fatalf("load journal after drain: %v", err)
	}
	if len(jst.Done) < 1 {
		t.Fatal("drained job journaled no completed cells")
	}

	// And the restarted daemon resumes it once the pacing is removed.
	spec := filepath.Join(stateDir, "jobs", st.ID, "spec.json")
	fast, err := os.ReadFile(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The spec is a digest-verified artifact: edit it through the durable
	// writer so the sidecar follows, as an operator would re-run sha256sum.
	if err := durable.WriteFileAtomic(nil, spec, bytes.Replace(fast, []byte(`"30s"`), []byte(`"0s"`), 1)); err != nil {
		t.Fatal(err)
	}
	d2 := startDaemon(t, stateDir)
	c = d2.client()
	final, err := c.Wait(ctx, st.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("wait after drain restart: %v\nlog: %s", err, readLog(d2.log))
	}
	if final.State != server.StateDone {
		t.Fatalf("resumed job state = %q, want done", final.State)
	}
	d2.cmd.Process.Signal(syscall.SIGTERM)
	d2.waitExit(t, 20*time.Second)
}
