// Command deesim regenerates the paper's evaluation (Figure 5 of
// Uht & Sindagi, MICRO-28 1995): speedup versus branch-path resources for
// the seven constrained ILP models plus the Oracle, on the five SPECint92
// stand-in workloads and their harmonic mean.
//
// Usage:
//
//	deesim [-bench all|name[,name...]] [-resources 8,16,32,64,128,256]
//	       [-models all|csv] [-predictor 2bit|papN|taken] [-scale N]
//	       [-max N] [-penalty N] [-strictmem] [-stats] [-csv]
//	       [-timeout 30s] [-deadlock-limit N]
//	       [-journal run.journal | -resume run.journal] [-jobs N]
//	       [-retries N] [-backoff 500ms]
//	       [-memo-dir path] [-memo-mem bytes]
//	       [-golden results/golden/figure5.json] [-write-golden out.json]
//	       [-figure name]
//	       [-bench-out BENCH_core.json] [-bench-baseline BENCH_core.json]
//	       [-bench-regress] [-bench-cap N]
//	       [-fsck -journal run.journal]
//
// With -bench-out or -bench-baseline the command runs in perf mode
// instead of sweeping: it measures the ILP core per (workload × model ×
// ET) cell — event-scheduler ns/op plus the same-run wall-clock speedup
// over the legacy scan loop — prints the suite benchstat-style, writes
// it to -bench-out, and exits non-zero with a regression error if any
// shared cell lost more than 20% of its baseline speedup_vs_legacy (or,
// with -bench-regress, grew ns/op by more than 20%).
//
// The run is cancellable: SIGINT/SIGTERM or an expired -timeout stops
// the sweep at the next cycle-loop checkpoint, prints whatever workload
// panels completed, and exits non-zero with a structured error naming
// the failing model, ET, benchmark, and cycle.
//
// With -journal, the sweep runs under the crash-safe supervisor: every
// (input × model × ET) cell is recorded to a durable append-only
// journal as it starts and finishes, cells run on a -jobs worker pool,
// and retryable failures (deadline, deadlock, panic) are retried
// -retries times with exponential -backoff and deterministic jitter. A
// killed run restarts with -resume: completed cells replay from the
// journal, only unfinished ones re-execute, and the merged tables are
// byte-identical to an uninterrupted run's.
//
// With -golden, the finished sweep is compared against a golden
// baseline snapshot; any speedup drifting beyond the tolerance exits
// non-zero with a regression error naming the model, benchmark, and
// figure. -write-golden records such a snapshot.
//
// With -fsck, no sweep runs: the -journal file is integrity-checked
// (full replay, verifying each record's content digest) and the
// verdict printed; a corrupt journal exits with the corrupt-kind code.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"deesim/internal/bench"
	"deesim/internal/cache"
	"deesim/internal/dee"
	"deesim/internal/experiments"
	"deesim/internal/fsck"
	"deesim/internal/ilpsim"
	"deesim/internal/memo"
	"deesim/internal/obs"
	"deesim/internal/perf"
	"deesim/internal/runx"
	"deesim/internal/superv"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with injectable args and streams, so the journal /
// resume / golden workflows are testable end to end in-process.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("deesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		benchFlag   = fs.String("bench", "all", "workloads to run: all or comma-separated names")
		resFlag     = fs.String("resources", "8,16,32,64,128,256", "comma-separated ET sweep (branch paths; 0 = unlimited, the Lam & Wilson setting)")
		modelsFlag  = fs.String("models", "all", "models: all or comma-separated (e.g. DEE-CD-MF,SP)")
		predFlag    = fs.String("predictor", "2bit", "branch predictor: 2bit, papN, taken")
		scaleFlag   = fs.Int("scale", 0, "workload input scale (0 = default)")
		maxFlag     = fs.Uint64("max", 0, "dynamic instruction cap per input (0 = run to completion)")
		penaltyFlag = fs.Int("penalty", 1, "misprediction restart penalty in cycles")
		strictMem   = fs.Bool("strictmem", false, "serialize loads behind all prior stores (ablation)")
		statsFlag   = fs.Bool("stats", false, "print root-resolution statistics per model")
		csvFlag     = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		pesFlag     = fs.Int("pes", 0, "processing elements issued per cycle (0 = unlimited, the paper's assumption)")
		latFlag     = fs.String("latency", "unit", "instruction latencies: unit (the paper) or realistic")
		cacheFlag   = fs.String("cache", "none", "data cache: none (the paper) or 16k (16KiB 4-way, 10-cycle miss)")
		timeoutFlag = fs.Duration("timeout", 0, "wall-clock limit for the whole run, e.g. 30s or 1m (0 = none)")
		dlFlag      = fs.Int("deadlock-limit", 0, fmt.Sprintf("abort a simulation after this many cycles without progress (0 = default %d)", ilpsim.DefaultDeadlockLimit))

		fsckFlag    = fs.Bool("fsck", false, "integrity-check the -journal file and exit (no sweep runs)")
		journalFlag = fs.String("journal", "", "record the sweep to a crash-safe run journal at this path")
		resumeFlag  = fs.String("resume", "", "resume an interrupted sweep from this journal (re-runs only unfinished cells)")
		jobsFlag    = fs.Int("jobs", 4, "worker-pool size for the journaled sweep")
		retriesFlag = fs.Int("retries", 2, "retries per cell after the first attempt (retryable failures only)")
		backoffFlag = fs.Duration("backoff", 500*time.Millisecond, "base retry backoff (exponential, deterministic jitter)")
		memoDir     = fs.String("memo-dir", "", "content-addressed result-cache directory: repeated sweeps reuse cached cells (empty = caching off)")
		memoMem     = fs.Int64("memo-mem", 0, "in-memory result-cache budget in bytes (0 = 64 MiB; effective with -memo-dir)")
		goldenFlag  = fs.String("golden", "", "compare the finished sweep against this golden baseline snapshot")
		writeGolden = fs.String("write-golden", "", "write a golden baseline snapshot of the finished sweep to this path")
		figureFlag  = fs.String("figure", "figure5", "figure name recorded in a written golden snapshot")

		benchOut      = fs.String("bench-out", "", "measure the ILP core (perf mode) and write the BENCH_core.json suite to this path")
		benchBaseline = fs.String("bench-baseline", "", "perf mode: compare the fresh suite against this baseline; exit non-zero on >20% regression")
		benchRegress  = fs.Bool("bench-regress", false, "perf mode: additionally gate raw ns/op against the baseline (same-machine comparisons only)")
		benchCap      = fs.Int("bench-cap", 0, "perf mode: dynamic instruction cap per workload (0 = 60000)")

		traceOut = fs.String("trace-out", "", "write a Chrome trace-event JSON timeline of the sweep to this path (load in chrome://tracing or Perfetto)")
	)
	obsFlags := obs.RegisterCLIFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "deesim:", err)
		code := runx.ExitCode(err)
		obsFlags.DumpFlightOnExit("deesim", code)
		return code
	}
	if done, err := obsFlags.Handle("deesim", stdout, stderr); done {
		return 0
	} else if err != nil {
		return fail(err)
	}
	defer func() {
		if err := obsFlags.WriteMetrics(); err != nil {
			fmt.Fprintln(stderr, "deesim:", err)
		}
	}()
	// Flush telemetry at first SIGINT/SIGTERM, not only on clean exit: a
	// second signal (or a kill mid-drain) skips the deferred writers, and
	// an interrupted sweep's metrics and trace are exactly the runs worth
	// examining. The trace flusher is registered below once -trace-out
	// has a tracer.
	var traceFlush func() error
	stopFlush := obsFlags.FlushOnSignal(func(format string, args ...any) {
		fmt.Fprintf(stderr, "deesim: "+format+"\n", args...)
	}, func() error {
		if traceFlush != nil {
			return traceFlush()
		}
		return nil
	})
	defer stopFlush()
	defer obsFlags.DumpFlightOnPanic("deesim")
	stopQuit := obsFlags.WatchQuit("deesim", func(format string, args ...any) {
		fmt.Fprintf(stderr, "deesim: "+format+"\n", args...)
	})
	defer stopQuit()

	if *fsckFlag {
		if *journalFlag == "" {
			return fail(runx.Newf(runx.KindInvalidInput, "deesim", "-fsck needs -journal <path> to check"))
		}
		r := fsck.JournalReport(nil, *journalFlag)
		r.Render(stdout)
		if err := r.Err(); err != nil {
			return fail(err)
		}
		return 0
	}

	if *benchOut != "" || *benchBaseline != "" {
		ctx, stop := runx.MainContext(*timeoutFlag)
		defer stop()
		return runPerf(ctx, perfOpts{
			out: *benchOut, baseline: *benchBaseline, strictNs: *benchRegress,
			cap: *benchCap, workloads: *benchFlag,
		}, stdout, stderr, fail)
	}

	cfg := experiments.Config{
		Scale:     *scaleFlag,
		MaxInstrs: *maxFlag,
		Predictor: *predFlag,
		Opts: ilpsim.Options{
			Penalty:       *penaltyFlag,
			StrictMemory:  *strictMem,
			PEs:           *pesFlag,
			DeadlockLimit: *dlFlag,
		},
	}
	switch *latFlag {
	case "unit":
	case "realistic":
		cfg.Opts.Lat = ilpsim.RealisticLatencies()
	default:
		return fail(fmt.Errorf("unknown latency model %q", *latFlag))
	}
	switch *cacheFlag {
	case "none":
	case "16k":
		c := cache.Default16K()
		cfg.Opts.Cache = &c
	default:
		return fail(fmt.Errorf("unknown cache %q", *cacheFlag))
	}
	var err error
	cfg.Resources, err = parseInts(*resFlag)
	if err != nil {
		return fail(err)
	}
	cfg.Models, err = parseModels(*modelsFlag)
	if err != nil {
		return fail(err)
	}
	ws, err := selectWorkloads(*benchFlag)
	if err != nil {
		return fail(err)
	}
	if *journalFlag != "" && *resumeFlag != "" {
		return fail(fmt.Errorf("-journal and -resume are mutually exclusive (resume appends to the journal it is given)"))
	}
	var mm *memo.Memo
	if *memoDir != "" {
		if mm, err = memo.New(memo.Config{Dir: *memoDir, MemBytes: *memoMem}); err != nil {
			return fail(err)
		}
	}

	printed := make(map[string]bool)
	emit := func(r *experiments.WorkloadResult) {
		printed[r.Workload] = true
		fmt.Fprintln(stdout, experiments.Render(r, cfg))
		if *statsFlag && r.Workload != "harmonic-mean" {
			printRootStats(stdout, r, cfg)
		}
		if *csvFlag {
			fmt.Fprintln(stdout, renderCSV(r, cfg))
		}
	}

	ctx, stop := runx.MainContext(*timeoutFlag)
	defer stop()
	if *traceOut != "" {
		tracer := obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
		traceFlush = func() error { return tracer.WriteFile(*traceOut) }
		defer func() {
			if err := tracer.WriteFile(*traceOut); err != nil {
				fmt.Fprintln(stderr, "deesim: write trace:", err)
			} else {
				fmt.Fprintf(stderr, "deesim: wrote %d trace events to %s\n", tracer.Len(), *traceOut)
			}
		}()
	}

	var results []*experiments.WorkloadResult
	if *journalFlag != "" || *resumeFlag != "" || mm != nil {
		// -memo-dir alone also routes through the supervised matrix path:
		// that is the decomposition whose cells carry canonical memo keys,
		// and its merged tables are byte-identical to the streaming path's.
		results, err = runJournaled(ctx, ws, cfg, journaledOpts{
			journal: *journalFlag, resume: *resumeFlag,
			jobs: *jobsFlag, retries: *retriesFlag, backoff: *backoffFlag,
			memo: mm,
		}, stderr)
		// The supervised path emits nothing until the merge; print every
		// completed panel (canonical order) whether or not the run failed.
		for _, r := range results {
			emit(r)
		}
	} else {
		// Stream each workload's panel as it completes, so a cancelled or
		// failed sweep still shows everything that finished.
		cfg.OnResult = emit
		results, err = experiments.RunAllContext(ctx, ws, cfg)
		for _, r := range results {
			if !printed[r.Workload] {
				emit(r)
			}
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "deesim: %d of %d workloads completed before failure\n", len(results), len(ws))
		return fail(err)
	}

	if *writeGolden != "" {
		g := goldenFromResults(*figureFlag, fs, results, cfg)
		if err := g.Write(*writeGolden); err != nil {
			return fail(fmt.Errorf("write golden %s: %w", *writeGolden, err))
		}
		fmt.Fprintf(stderr, "deesim: wrote golden snapshot %s (%d points)\n", *writeGolden, len(g.Points))
	}
	if *goldenFlag != "" {
		g, err := superv.LoadGolden(*goldenFlag)
		if err != nil {
			return fail(err)
		}
		if err := superv.CompareGolden(g, lookupResults(results), 0); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "deesim: %d golden cells within tolerance of %s\n", len(g.Points), *goldenFlag)
	}
	return 0
}

type perfOpts struct {
	out, baseline string
	strictNs      bool
	cap           int
	workloads     string
}

// runPerf is the benchmark-regression pipeline entry: measure the ILP
// core (event scheduler ns/op plus same-run speedup over the legacy
// scanner), write the suite, print it benchstat-style, and gate against
// a baseline when one is given.
func runPerf(ctx context.Context, o perfOpts, stdout, stderr io.Writer, fail func(error) int) int {
	cfg := perf.CoreConfig{TraceCap: o.cap}
	if o.workloads != "all" && o.workloads != "" {
		ws, err := selectWorkloads(o.workloads)
		if err != nil {
			return fail(err)
		}
		for _, w := range ws {
			cfg.Workloads = append(cfg.Workloads, w.Name)
		}
	}
	suite, err := perf.RunCore(ctx, cfg)
	if err != nil {
		return fail(err)
	}
	suite.Benchstat(stdout)
	fmt.Fprintf(stderr, "deesim: geomean speedup_vs_legacy %.2fx over %d cells\n",
		suite.GeomeanVsLegacy(), len(suite.Records))
	if o.out != "" {
		if err := suite.WriteFile(o.out); err != nil {
			return fail(fmt.Errorf("write %s: %w", o.out, err))
		}
		fmt.Fprintf(stderr, "deesim: wrote perf suite %s\n", o.out)
	}
	if o.baseline != "" {
		base, err := perf.ReadFile(o.baseline)
		if err != nil {
			return fail(err)
		}
		if err := perf.Compare(base, suite, perf.CompareOpts{MinVsLegacy: 1.5, StrictNs: o.strictNs}); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "deesim: no perf regression against %s (%d baseline cells)\n",
			o.baseline, len(base.Records))
	}
	return 0
}

type journaledOpts struct {
	journal, resume string
	jobs, retries   int
	backoff         time.Duration
	memo            *memo.Memo
}

// runJournaled runs the sweep under the crash-safe supervisor,
// creating or resuming the run journal. With no journal path (the
// -memo-dir-only case) the supervisor runs unjournaled: the memo store
// is the durability layer instead.
func runJournaled(ctx context.Context, ws []bench.Workload, cfg experiments.Config, o journaledOpts, stderr io.Writer) ([]*experiments.WorkloadResult, error) {
	meta := experiments.MatrixMeta(ws, cfg)
	total := experiments.MatrixTaskCount(ws, cfg)
	var (
		j     *superv.Journal
		prior *superv.State
		path  = o.journal
		err   error
	)
	if o.resume != "" {
		path = o.resume
		j, prior, err = superv.Resume(path, "deesim", meta)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(stderr, "deesim: resuming %s: %s\n", path, prior.Summary(total))
	} else if path != "" {
		if j, err = superv.Create(path, "deesim", meta); err != nil {
			return nil, err
		}
	}
	if j != nil {
		defer j.Close()
	}
	mcfg := experiments.MatrixConfig{
		Jobs:    o.jobs,
		Journal: j,
		Prior:   prior,
		Memo:    o.memo,
		Retry: superv.RetryPolicy{
			Attempts: o.retries + 1,
			Backoff:  o.backoff,
		},
		OnRetry: func(key string, attempt int, delay string, err error) {
			fmt.Fprintf(stderr, "deesim: retrying %s (attempt %d after %s): %v\n", key, attempt, delay, err)
		},
	}
	results, err := experiments.RunMatrixContext(ctx, ws, cfg, mcfg)
	if err != nil {
		// The journal knows exactly what a resumed run will skip.
		if path != "" {
			if st, lerr := superv.Load(path); lerr == nil {
				fmt.Fprintf(stderr, "deesim: journal %s: %s — resume with: deesim -resume %s\n",
					path, st.Summary(total), path)
			}
		}
		return results, err
	}
	return results, nil
}

// lookupResults adapts merged workload results to the golden-compare
// lookup: benchmarks are workload names, including "harmonic-mean".
func lookupResults(rs []*experiments.WorkloadResult) superv.Lookup {
	byName := make(map[string]*experiments.WorkloadResult, len(rs))
	for _, r := range rs {
		byName[r.Workload] = r
	}
	return func(benchmark, model string, et int) (float64, bool) {
		r, ok := byName[benchmark]
		if !ok {
			return 0, false
		}
		v, ok := r.Speedup[model][et]
		return v, ok
	}
}

// goldenFromResults snapshots every (workload, model, ET) cell of a
// finished sweep.
func goldenFromResults(figure string, fs *flag.FlagSet, rs []*experiments.WorkloadResult, cfg experiments.Config) *superv.Golden {
	var cmd strings.Builder
	cmd.WriteString("deesim")
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "write-golden" || f.Name == "golden" || f.Name == "journal" || f.Name == "resume" {
			return
		}
		fmt.Fprintf(&cmd, " -%s %v", f.Name, f.Value)
	})
	g := &superv.Golden{Figure: figure, Version: 1, Tolerance: superv.DefaultGoldenTolerance, Command: cmd.String()}
	for _, r := range rs {
		for _, m := range cfg.Models {
			for _, et := range cfg.Resources {
				g.Points = append(g.Points, superv.GoldenPoint{
					Benchmark: r.Workload, Model: m.String(), ET: et, Speedup: r.Speedup[m.String()][et],
				})
			}
		}
	}
	return g
}

func printRootStats(w io.Writer, r *experiments.WorkloadResult, cfg experiments.Config) {
	fmt.Fprintf(w, "  mispredict resolutions at tree root (%s):\n", r.Workload)
	for _, in := range r.Inputs {
		for _, m := range cfg.Models {
			var parts []string
			for _, et := range cfg.Resources {
				parts = append(parts, fmt.Sprintf("ET%d=%.0f%%", et, 100*in.RootRate[m.String()][et]))
			}
			fmt.Fprintf(w, "    %-12s %-10s %s\n", in.Input, m, strings.Join(parts, " "))
		}
	}
	fmt.Fprintln(w)
}

func renderCSV(r *experiments.WorkloadResult, cfg experiments.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload,model,resources,speedup\n")
	for _, m := range cfg.Models {
		for _, et := range cfg.Resources {
			fmt.Fprintf(&b, "%s,%s,%d,%.4f\n", r.Workload, m, et, r.Speedup[m.String()][et])
		}
	}
	fmt.Fprintf(&b, "%s,Oracle,,%.4f\n", r.Workload, r.Oracle)
	return b.String()
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad resource count %q (0 = unlimited)", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty resource list")
	}
	return out, nil
}

func parseModels(s string) ([]ilpsim.Model, error) {
	if s == "all" {
		return ilpsim.PaperModels, nil
	}
	byName := make(map[string]ilpsim.Model)
	for _, m := range ilpsim.PaperModels {
		byName[strings.ToLower(m.String())] = m
	}
	// Reference strategies beyond the paper's seven.
	byName["dee-pure"] = ilpsim.Model{Strategy: dee.DEEPure, CDMode: ilpsim.CDMF}
	byName["dee-profile"] = ilpsim.Model{Strategy: dee.DEEProfile, CDMode: ilpsim.CDMF}
	var out []ilpsim.Model
	for _, f := range strings.Split(s, ",") {
		f = strings.ToLower(strings.TrimSpace(f))
		if f == "" {
			continue
		}
		m, ok := byName[f]
		if !ok {
			return nil, fmt.Errorf("unknown model %q (have: EE SP DEE SP-CD DEE-CD SP-CD-MF DEE-CD-MF)", f)
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty model list")
	}
	return out, nil
}

func selectWorkloads(s string) ([]bench.Workload, error) {
	if s == "all" {
		return bench.All(), nil
	}
	var out []bench.Workload
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		w, err := bench.ByName(f)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty workload list")
	}
	return out, nil
}
