// Command deesim regenerates the paper's evaluation (Figure 5 of
// Uht & Sindagi, MICRO-28 1995): speedup versus branch-path resources for
// the seven constrained ILP models plus the Oracle, on the five SPECint92
// stand-in workloads and their harmonic mean.
//
// Usage:
//
//	deesim [-bench all|name[,name...]] [-resources 8,16,32,64,128,256]
//	       [-models all|csv] [-predictor 2bit|papN|taken] [-scale N]
//	       [-max N] [-penalty N] [-strictmem] [-stats] [-csv]
//	       [-timeout 30s] [-deadlock-limit N]
//
// The run is cancellable: SIGINT/SIGTERM or an expired -timeout stops
// the sweep at the next cycle-loop checkpoint, prints whatever workload
// panels completed, and exits non-zero with a structured error naming
// the failing model, ET, benchmark, and cycle.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"deesim/internal/bench"
	"deesim/internal/cache"
	"deesim/internal/dee"
	"deesim/internal/experiments"
	"deesim/internal/ilpsim"
	"deesim/internal/runx"
)

func main() {
	var (
		benchFlag   = flag.String("bench", "all", "workloads to run: all or comma-separated names")
		resFlag     = flag.String("resources", "8,16,32,64,128,256", "comma-separated ET sweep (branch paths; 0 = unlimited, the Lam & Wilson setting)")
		modelsFlag  = flag.String("models", "all", "models: all or comma-separated (e.g. DEE-CD-MF,SP)")
		predFlag    = flag.String("predictor", "2bit", "branch predictor: 2bit, papN, taken")
		scaleFlag   = flag.Int("scale", 0, "workload input scale (0 = default)")
		maxFlag     = flag.Uint64("max", 0, "dynamic instruction cap per input (0 = run to completion)")
		penaltyFlag = flag.Int("penalty", 1, "misprediction restart penalty in cycles")
		strictMem   = flag.Bool("strictmem", false, "serialize loads behind all prior stores (ablation)")
		statsFlag   = flag.Bool("stats", false, "print root-resolution statistics per model")
		csvFlag     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		pesFlag     = flag.Int("pes", 0, "processing elements issued per cycle (0 = unlimited, the paper's assumption)")
		latFlag     = flag.String("latency", "unit", "instruction latencies: unit (the paper) or realistic")
		cacheFlag   = flag.String("cache", "none", "data cache: none (the paper) or 16k (16KiB 4-way, 10-cycle miss)")
		timeoutFlag = flag.Duration("timeout", 0, "wall-clock limit for the whole run, e.g. 30s or 1m (0 = none)")
		dlFlag      = flag.Int("deadlock-limit", 0, fmt.Sprintf("abort a simulation after this many cycles without progress (0 = default %d)", ilpsim.DefaultDeadlockLimit))
	)
	flag.Parse()

	cfg := experiments.Config{
		Scale:     *scaleFlag,
		MaxInstrs: *maxFlag,
		Predictor: *predFlag,
		Opts: ilpsim.Options{
			Penalty:       *penaltyFlag,
			StrictMemory:  *strictMem,
			PEs:           *pesFlag,
			DeadlockLimit: *dlFlag,
		},
	}
	switch *latFlag {
	case "unit":
	case "realistic":
		cfg.Opts.Lat = ilpsim.RealisticLatencies()
	default:
		fatal(fmt.Errorf("unknown latency model %q", *latFlag))
	}
	switch *cacheFlag {
	case "none":
	case "16k":
		c := cache.Default16K()
		cfg.Opts.Cache = &c
	default:
		fatal(fmt.Errorf("unknown cache %q", *cacheFlag))
	}
	var err error
	cfg.Resources, err = parseInts(*resFlag)
	if err != nil {
		fatal(err)
	}
	cfg.Models, err = parseModels(*modelsFlag)
	if err != nil {
		fatal(err)
	}
	ws, err := selectWorkloads(*benchFlag)
	if err != nil {
		fatal(err)
	}

	// Stream each workload's panel as it completes, so a cancelled or
	// failed sweep still shows everything that finished.
	printed := make(map[string]bool)
	emit := func(r *experiments.WorkloadResult) {
		printed[r.Workload] = true
		fmt.Println(experiments.Render(r, cfg))
		if *statsFlag && r.Workload != "harmonic-mean" {
			printRootStats(r, cfg)
		}
		if *csvFlag {
			fmt.Println(renderCSV(r, cfg))
		}
	}
	cfg.OnResult = emit

	ctx, stop := runx.MainContext(*timeoutFlag)
	defer stop()
	results, err := experiments.RunAllContext(ctx, ws, cfg)
	for _, r := range results {
		if !printed[r.Workload] {
			emit(r)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "deesim: %d of %d workloads completed before failure\n", len(results), len(ws))
		fatal(err)
	}
}

func printRootStats(r *experiments.WorkloadResult, cfg experiments.Config) {
	fmt.Printf("  mispredict resolutions at tree root (%s):\n", r.Workload)
	for _, in := range r.Inputs {
		for _, m := range cfg.Models {
			var parts []string
			for _, et := range cfg.Resources {
				parts = append(parts, fmt.Sprintf("ET%d=%.0f%%", et, 100*in.RootRate[m.String()][et]))
			}
			fmt.Printf("    %-12s %-10s %s\n", in.Input, m, strings.Join(parts, " "))
		}
	}
	fmt.Println()
}

func renderCSV(r *experiments.WorkloadResult, cfg experiments.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload,model,resources,speedup\n")
	for _, m := range cfg.Models {
		for _, et := range cfg.Resources {
			fmt.Fprintf(&b, "%s,%s,%d,%.4f\n", r.Workload, m, et, r.Speedup[m.String()][et])
		}
	}
	fmt.Fprintf(&b, "%s,Oracle,,%.4f\n", r.Workload, r.Oracle)
	return b.String()
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad resource count %q (0 = unlimited)", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty resource list")
	}
	return out, nil
}

func parseModels(s string) ([]ilpsim.Model, error) {
	if s == "all" {
		return ilpsim.PaperModels, nil
	}
	byName := make(map[string]ilpsim.Model)
	for _, m := range ilpsim.PaperModels {
		byName[strings.ToLower(m.String())] = m
	}
	// Reference strategies beyond the paper's seven.
	byName["dee-pure"] = ilpsim.Model{Strategy: dee.DEEPure, CDMode: ilpsim.CDMF}
	byName["dee-profile"] = ilpsim.Model{Strategy: dee.DEEProfile, CDMode: ilpsim.CDMF}
	var out []ilpsim.Model
	for _, f := range strings.Split(s, ",") {
		f = strings.ToLower(strings.TrimSpace(f))
		if f == "" {
			continue
		}
		m, ok := byName[f]
		if !ok {
			return nil, fmt.Errorf("unknown model %q (have: EE SP DEE SP-CD DEE-CD SP-CD-MF DEE-CD-MF)", f)
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty model list")
	}
	return out, nil
}

func selectWorkloads(s string) ([]bench.Workload, error) {
	if s == "all" {
		return bench.All(), nil
	}
	var out []bench.Workload
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		w, err := bench.ByName(f)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty workload list")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "deesim:", err)
	os.Exit(1)
}
