package main

import (
	"strings"
	"testing"

	"deesim/internal/dee"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("8, 16,256")
	if err != nil || len(got) != 3 || got[0] != 8 || got[2] != 256 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if got, err := parseInts("100,0"); err != nil || got[1] != 0 {
		t.Errorf("unlimited sentinel rejected: %v %v", got, err)
	}
	for _, bad := range []string{"", "x", "-4", ","} {
		if _, err := parseInts(bad); err == nil {
			t.Errorf("parseInts(%q) accepted", bad)
		}
	}
}

func TestParseModels(t *testing.T) {
	all, err := parseModels("all")
	if err != nil || len(all) != 7 {
		t.Fatalf("all -> %v, %v", all, err)
	}
	got, err := parseModels("dee-cd-mf, SP")
	if err != nil || len(got) != 2 {
		t.Fatalf("parseModels: %v, %v", got, err)
	}
	if got[0].String() != "DEE-CD-MF" || got[1].String() != "SP" {
		t.Errorf("parsed %v", got)
	}
	ref, err := parseModels("dee-pure,dee-profile")
	if err != nil || ref[0].Strategy != dee.DEEPure || ref[1].Strategy != dee.DEEProfile {
		t.Errorf("reference strategies: %v, %v", ref, err)
	}
	if _, err := parseModels("warp-drive"); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Errorf("bad model accepted: %v", err)
	}
}

func TestSelectWorkloads(t *testing.T) {
	ws, err := selectWorkloads("all")
	if err != nil || len(ws) != 5 {
		t.Fatalf("all workloads: %d, %v", len(ws), err)
	}
	ws, err = selectWorkloads("compress,xlisp")
	if err != nil || len(ws) != 2 || ws[1].Name != "xlisp" {
		t.Fatalf("subset: %v, %v", ws, err)
	}
	if _, err := selectWorkloads("gcc"); err == nil {
		t.Error("unknown workload accepted")
	}
}
