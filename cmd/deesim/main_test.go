package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deesim/internal/dee"
	"deesim/internal/runx"
	"deesim/internal/superv"
)

// run invokes the CLI in-process and returns (exit code, stdout, stderr).
func run(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := realMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

// fastArgs keeps e2e sweeps to a couple of seconds.
func fastArgs(extra ...string) []string {
	return append([]string{
		"-bench", "xlisp,compress", "-max", "5000",
		"-models", "SP,DEE-CD-MF", "-resources", "8,64",
	}, extra...)
}

// TestJournalResumeEndToEnd exercises -journal and -resume through the
// real CLI: a journaled run prints every panel (canonical order, unlike
// the plain path's completion-order streaming), and a journal with a
// torn tail and missing records must resume to byte-identical output.
func TestJournalResumeEndToEnd(t *testing.T) {
	code, plain, stderr := run(t, fastArgs()...)
	if code != 0 {
		t.Fatalf("plain run exited %d: %s", code, stderr)
	}
	if !strings.Contains(plain, "harmonic-mean") {
		t.Fatalf("plain run printed no harmonic-mean panel:\n%s", plain)
	}

	dir := t.TempDir()
	journal := filepath.Join(dir, "run.journal")
	code, journaled, stderr := run(t, fastArgs("-journal", journal, "-jobs", "2")...)
	if code != 0 {
		t.Fatalf("journaled run exited %d: %s", code, stderr)
	}
	// Same panels as the plain run, in the canonical -bench order.
	for _, panel := range []string{"xlisp", "compress", "harmonic-mean"} {
		if !strings.Contains(journaled, panel) {
			t.Errorf("journaled output missing %s panel", panel)
		}
	}
	if xi, ci := strings.Index(journaled, "xlisp"), strings.Index(journaled, "compress"); xi > ci {
		t.Errorf("journaled panels not in canonical order (xlisp@%d, compress@%d)", xi, ci)
	}

	// Simulate a crash: tear the journal tail (losing its final record
	// mid-write) and resume. Output must be byte-identical again.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journal, data[:len(data)-40], 0o644); err != nil {
		t.Fatal(err)
	}
	code, resumed, stderr := run(t, fastArgs("-resume", journal, "-jobs", "2")...)
	if code != 0 {
		t.Fatalf("resumed run exited %d: %s", code, stderr)
	}
	if !strings.Contains(stderr, "resuming") {
		t.Errorf("resume did not report replay progress: %s", stderr)
	}
	if resumed != journaled {
		t.Errorf("resumed tables differ from uninterrupted journaled run:\n--- resumed ---\n%s\n--- uninterrupted ---\n%s", resumed, journaled)
	}

	// A journal recorded under a different matrix must be refused.
	code, _, stderr = run(t, "-bench", "xlisp", "-max", "5000",
		"-models", "SP", "-resources", "8", "-resume", journal)
	if code == 0 {
		t.Error("resume under a changed matrix succeeded")
	} else if !strings.Contains(stderr, "journal") {
		t.Errorf("unhelpful refusal: %s", stderr)
	}
}

// TestFsckJournalEndToEnd: -fsck replays a journal's record digests —
// exit 0 on a clean journal, the corrupt-kind exit code after a
// mid-file bit flip, and usage guidance without -journal.
func TestFsckJournalEndToEnd(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "run.journal")
	code, _, stderr := run(t, "-bench", "xlisp", "-max", "3000",
		"-models", "SP", "-resources", "8", "-journal", journal)
	if code != 0 {
		t.Fatalf("journaled run exited %d: %s", code, stderr)
	}
	code, out, stderr := run(t, "-fsck", "-journal", journal)
	if code != 0 {
		t.Fatalf("clean fsck exited %d: %s", code, stderr)
	}
	if !strings.Contains(out, "ok") {
		t.Errorf("clean fsck output: %s", out)
	}

	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(journal, data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ = run(t, "-fsck", "-journal", journal)
	if code != runx.ExitCorrupt {
		t.Fatalf("corrupt fsck exited %d, want %d:\n%s", code, runx.ExitCorrupt, out)
	}

	if code, _, stderr := run(t, "-fsck"); code == 0 || !strings.Contains(stderr, "-journal") {
		t.Errorf("-fsck without -journal exited %d: %s", code, stderr)
	}
}

// TestGoldenWriteAndCompareEndToEnd: -write-golden then -golden round
// trips cleanly, and a drifted golden fails with attribution.
func TestGoldenWriteAndCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	golden := filepath.Join(dir, "smoke.json")
	code, _, stderr := run(t, fastArgs("-write-golden", golden, "-figure", "e2e-smoke")...)
	if code != 0 {
		t.Fatalf("write-golden exited %d: %s", code, stderr)
	}
	code, _, stderr = run(t, fastArgs("-golden", golden)...)
	if code != 0 {
		t.Fatalf("golden compare exited %d: %s", code, stderr)
	}
	if !strings.Contains(stderr, "within tolerance") {
		t.Errorf("no compare confirmation: %s", stderr)
	}

	// Inject a 5% drift into one golden cell; the compare must fail with
	// a typed regression naming the model, benchmark, and figure.
	g, err := superv.LoadGolden(golden)
	if err != nil {
		t.Fatal(err)
	}
	g.Points[0].Speedup *= 1.05
	if err := g.Write(golden); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = run(t, fastArgs("-golden", golden)...)
	if code == 0 {
		t.Fatal("drifted golden passed the gate")
	}
	for _, want := range []string{"golden regression", "e2e-smoke", g.Points[0].Model, g.Points[0].Benchmark} {
		if !strings.Contains(stderr, want) {
			t.Errorf("regression error %q missing %q", stderr, want)
		}
	}
}

func TestJournalAndResumeMutuallyExclusive(t *testing.T) {
	code, _, stderr := run(t, fastArgs("-journal", "a", "-resume", "b")...)
	if code == 0 || !strings.Contains(stderr, "mutually exclusive") {
		t.Errorf("exit %d, stderr %s", code, stderr)
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("8, 16,256")
	if err != nil || len(got) != 3 || got[0] != 8 || got[2] != 256 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if got, err := parseInts("100,0"); err != nil || got[1] != 0 {
		t.Errorf("unlimited sentinel rejected: %v %v", got, err)
	}
	for _, bad := range []string{"", "x", "-4", ","} {
		if _, err := parseInts(bad); err == nil {
			t.Errorf("parseInts(%q) accepted", bad)
		}
	}
}

func TestParseModels(t *testing.T) {
	all, err := parseModels("all")
	if err != nil || len(all) != 7 {
		t.Fatalf("all -> %v, %v", all, err)
	}
	got, err := parseModels("dee-cd-mf, SP")
	if err != nil || len(got) != 2 {
		t.Fatalf("parseModels: %v, %v", got, err)
	}
	if got[0].String() != "DEE-CD-MF" || got[1].String() != "SP" {
		t.Errorf("parsed %v", got)
	}
	ref, err := parseModels("dee-pure,dee-profile")
	if err != nil || ref[0].Strategy != dee.DEEPure || ref[1].Strategy != dee.DEEProfile {
		t.Errorf("reference strategies: %v, %v", ref, err)
	}
	if _, err := parseModels("warp-drive"); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Errorf("bad model accepted: %v", err)
	}
}

func TestSelectWorkloads(t *testing.T) {
	ws, err := selectWorkloads("all")
	if err != nil || len(ws) != 5 {
		t.Fatalf("all workloads: %d, %v", len(ws), err)
	}
	ws, err = selectWorkloads("compress,xlisp")
	if err != nil || len(ws) != 2 || ws[1].Name != "xlisp" {
		t.Fatalf("subset: %v, %v", ws, err)
	}
	if _, err := selectWorkloads("gcc"); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestObservabilityFlags exercises the shared telemetry flag block
// end to end: -version short-circuits, -metrics-out dumps a Prometheus
// snapshot with simulator series, -trace-out writes a loadable Chrome
// trace, and -log-level rejects garbage.
func TestObservabilityFlags(t *testing.T) {
	code, out, _ := run(t, "-version")
	if code != 0 || !strings.Contains(out, "deesim version") {
		t.Fatalf("-version: code %d, out %q", code, out)
	}

	dir := t.TempDir()
	mpath := filepath.Join(dir, "metrics.txt")
	tpath := filepath.Join(dir, "sweep.json")
	args := fastArgs("-metrics-out", mpath, "-trace-out", tpath,
		"-journal", filepath.Join(dir, "run.journal"))
	code, _, stderr := run(t, args...)
	if code != 0 {
		t.Fatalf("sweep failed: %s", stderr)
	}
	metrics, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatalf("no metrics snapshot: %v", err)
	}
	for _, want := range []string{
		"# TYPE deesim_sim_cycles_total counter",
		"deesim_sim_instructions_issued_total",
		"deesim_superv_tasks_done_total",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics snapshot missing %q", want)
		}
	}
	trace, err := os.ReadFile(tpath)
	if err != nil {
		t.Fatalf("no trace file: %v", err)
	}
	var tj struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &tj); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	// 8 cells + build spans, at minimum.
	if len(tj.TraceEvents) < 9 {
		t.Errorf("trace has %d events, want >= 9", len(tj.TraceEvents))
	}

	code, _, stderr = run(t, "-log-level", "nonsense")
	if code == 0 || !strings.Contains(stderr, "nonsense") {
		t.Errorf("bad -log-level accepted: code %d, stderr %q", code, stderr)
	}
}
