package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// run invokes the CLI in-process and returns (exit code, stdout, stderr).
func run(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := realMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

// fastArgs keeps study sweeps to well under a second.
func fastArgs(extra ...string) []string {
	return append([]string{
		"-bench", "xlisp", "-max", "3000", "-et", "16,64",
	}, extra...)
}

// TestJournaledStudiesMatchPlain: the supervised path must reprint the
// studies byte-identically to the direct path (both emit in canonical
// study order), and a resume of the finished journal must replay the
// same bytes without re-running anything.
func TestJournaledStudiesMatchPlain(t *testing.T) {
	args := fastArgs("-study", "penalty")
	code, plain, stderr := run(t, args...)
	if code != 0 {
		t.Fatalf("plain run exited %d: %s", code, stderr)
	}
	if !strings.Contains(plain, "misprediction restart penalty") {
		t.Fatalf("penalty study missing from output:\n%s", plain)
	}

	journal := filepath.Join(t.TempDir(), "run.journal")
	code, journaled, stderr := run(t, fastArgs("-study", "penalty", "-journal", journal)...)
	if code != 0 {
		t.Fatalf("journaled run exited %d: %s", code, stderr)
	}
	if journaled != plain {
		t.Errorf("journaled output differs from plain:\n--- journaled ---\n%s\n--- plain ---\n%s", journaled, plain)
	}

	// Resume of a complete journal: pure replay, identical bytes.
	code, resumed, stderr := run(t, fastArgs("-study", "penalty", "-resume", journal)...)
	if code != 0 {
		t.Fatalf("resume exited %d: %s", code, stderr)
	}
	if !strings.Contains(stderr, "resuming") {
		t.Errorf("resume did not report replay progress: %s", stderr)
	}
	if resumed != plain {
		t.Errorf("replayed output differs from plain:\n--- replayed ---\n%s\n--- plain ---\n%s", resumed, plain)
	}
}

// TestResumeAfterTornJournal: tear the journal tail (simulated crash
// mid-record) from a two-study run and resume; the combined output must
// match an uninterrupted run of both studies.
func TestResumeAfterTornJournal(t *testing.T) {
	code, want, stderr := run(t, fastArgs("-study", "all")...)
	if code != 0 {
		t.Fatalf("reference run exited %d: %s", code, stderr)
	}

	journal := filepath.Join(t.TempDir(), "run.journal")
	code, _, stderr = run(t, fastArgs("-study", "all", "-journal", journal)...)
	if code != 0 {
		t.Fatalf("journaled run exited %d: %s", code, stderr)
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	// Tear deep enough to lose at least the final study's record.
	if err := os.WriteFile(journal, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	code, resumed, stderr := run(t, fastArgs("-study", "all", "-resume", journal)...)
	if code != 0 {
		t.Fatalf("resume exited %d: %s", code, stderr)
	}
	if resumed != want {
		t.Errorf("resumed output differs from uninterrupted run:\n--- resumed ---\n%s\n--- want ---\n%s", resumed, want)
	}
}

// TestResumeRejectsChangedRun: a journal recorded under different study
// settings must be refused rather than silently merged.
func TestResumeRejectsChangedRun(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "run.journal")
	code, _, stderr := run(t, fastArgs("-study", "penalty", "-journal", journal)...)
	if code != 0 {
		t.Fatalf("journaled run exited %d: %s", code, stderr)
	}
	code, _, stderr = run(t, "-bench", "xlisp", "-max", "3000", "-et", "16,256",
		"-study", "penalty", "-resume", journal)
	if code == 0 {
		t.Error("resume under changed -et succeeded")
	} else if !strings.Contains(stderr, "journal") {
		t.Errorf("unhelpful refusal: %s", stderr)
	}
}

func TestJournalAndResumeMutuallyExclusive(t *testing.T) {
	code, _, stderr := run(t, fastArgs("-journal", "a", "-resume", "b")...)
	if code == 0 || !strings.Contains(stderr, "mutually exclusive") {
		t.Errorf("exit %d, stderr %s", code, stderr)
	}
}

func TestUnknownStudyRejected(t *testing.T) {
	code, _, stderr := run(t, fastArgs("-study", "warp")...)
	if code == 0 || !strings.Contains(stderr, "unknown study") {
		t.Errorf("exit %d, stderr %s", code, stderr)
	}
}
