// Command ablate runs the ablation studies for the reproduction's design
// choices:
//
//	-study penalty   misprediction restart penalty 0/1/2/4 cycles
//	                 (the paper's Levo penalty is 1, "may be reducible
//	                 to 0")
//	-study memory    perfect memory disambiguation (the paper's minimal
//	                 data dependencies) vs loads serialized behind all
//	                 stores
//	-study designp   static tree sized for the measured accuracy vs
//	                 deliberately mis-sized design points (§3.1 step 1-2:
//	                 "assume all branches are predicted with accuracy p")
//	-study pe        explicit processing-element (issue width) limits
//	                 (future work in §1; §5.1 notes the implicit PE use
//	                 stayed under 200)
//	-study latency   unit (the paper's assumption) vs realistic
//	                 multi-cycle latencies, per model
//	-study cache     unit-latency memory vs a 16 KiB data cache
//	-study tree      static heuristic vs the Theorem-1 greedy tree vs the
//	                 "theoretically perfect" dynamic per-branch tree the
//	                 paper deems impractical (§3)
//	-study all       everything
//
// Usage: ablate [-study all] [-bench xlisp] [-et 64,256] [-max 150000]
//
//	[-timeout 30s] [-deadlock-limit N]
//
// Studies run under a cancellable context: SIGINT/SIGTERM or an expired
// -timeout stops the current simulation at the next checkpoint, the
// studies already printed stand, and the process exits non-zero with a
// structured error naming the model, ET, and cycle that was running.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"deesim/internal/bench"
	"deesim/internal/cache"
	"deesim/internal/dee"
	"deesim/internal/ilpsim"
	"deesim/internal/predictor"
	"deesim/internal/runx"
	"deesim/internal/stats"
	"deesim/internal/trace"
)

// deadlockLimit is the -deadlock-limit flag value, applied to every
// simulator the studies construct.
var deadlockLimit int

func main() {
	var (
		study     = flag.String("study", "all", "penalty, memory, designp, pe, latency, cache, tree, accuracy, or all")
		benchFlag = flag.String("bench", "xlisp", "workload")
		etFlag    = flag.String("et", "64,256", "resource levels")
		max       = flag.Uint64("max", 150_000, "dynamic instruction cap")
		timeout   = flag.Duration("timeout", 0, "wall-clock limit for the whole run, e.g. 30s (0 = none)")
		dlFlag    = flag.Int("deadlock-limit", 0, fmt.Sprintf("abort a simulation after this many cycles without progress (0 = default %d)", ilpsim.DefaultDeadlockLimit))
	)
	flag.Parse()
	deadlockLimit = *dlFlag

	ctx, stop := runx.MainContext(*timeout)
	defer stop()

	w, err := bench.ByName(*benchFlag)
	if err != nil {
		fatal(err)
	}
	prog, err := w.Inputs[0].Build(0)
	if err != nil {
		fatal(err)
	}
	tr, err := trace.RecordContext(ctx, prog, *max)
	if err != nil {
		fatal(err)
	}
	var ets []int
	for _, f := range strings.Split(*etFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			fatal(fmt.Errorf("bad ET %q", f))
		}
		ets = append(ets, v)
	}
	fmt.Printf("workload %s: %d dynamic instructions\n\n", w.Name, tr.Len())

	studies := []struct {
		name string
		run  func(context.Context, *trace.Trace, []int) error
	}{
		{"penalty", penaltyStudy},
		{"memory", memoryStudy},
		{"designp", designPStudy},
		{"pe", peStudy},
		{"latency", latencyStudy},
		{"cache", cacheStudy},
		{"tree", treeStudy},
		{"accuracy", func(ctx context.Context, _ *trace.Trace, ets []int) error {
			return accuracyStudy(ctx, ets)
		}},
	}
	known := false
	for _, st := range studies {
		if *study != st.name && *study != "all" {
			continue
		}
		known = true
		if err := st.run(ctx, tr, ets); err != nil {
			fatal(err)
		}
	}
	if !known {
		fatal(fmt.Errorf("unknown study %q", *study))
	}
}

// newSim builds a simulator with the CLI-wide deadlock limit applied.
func newSim(ctx context.Context, tr *trace.Trace, opts ilpsim.Options) (*ilpsim.Sim, error) {
	if opts.DeadlockLimit == 0 {
		opts.DeadlockLimit = deadlockLimit
	}
	return ilpsim.NewContext(ctx, tr, predictor.NewTwoBit(), opts)
}

// accuracyStudy sweeps branch predictability on the synthetic workload:
// §5.3 — "There is a tradeoff between predictor accuracy and its cost
// versus degree of DEE realization and its cost ... The data suggest
// that some use of DEE is likely to be beneficial, regardless of the
// predictor accuracy."
func accuracyStudy(ctx context.Context, ets []int) error {
	et := ets[len(ets)-1]
	t := stats.NewTable(
		fmt.Sprintf("Ablation: branch predictability vs DEE benefit (ET=%d)", et),
		"branch bias", []string{"accuracy%", "SP", "DEE-CD-MF", "DEE advantage"})
	for _, bias := range []int{60, 70, 80, 88, 94, 98} {
		prog, err := bench.BuildSynthetic(bench.SyntheticConfig{
			Iterations: 4000, BranchesPerIter: 4, Bias: bias, Seed: uint32(bias), Work: 3,
		})
		if err != nil {
			return err
		}
		tr, err := trace.RecordContext(ctx, prog, 0)
		if err != nil {
			return err
		}
		sim, err := newSim(ctx, tr, ilpsim.Options{Penalty: 1})
		if err != nil {
			return err
		}
		sp, err := sim.RunContext(ctx, ilpsim.ModelSP, et)
		if err != nil {
			return err
		}
		de, err := sim.RunContext(ctx, ilpsim.ModelDEECDMF, et)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("%d%%", bias)
		t.Set(name, 0, 100*sim.Accuracy())
		t.Set(name, 1, sp.Speedup)
		t.Set(name, 2, de.Speedup)
		t.Set(name, 3, de.Speedup/sp.Speedup)
	}
	fmt.Println(t.Render())
	fmt.Println("DEE's advantage over plain prediction persists across the whole")
	fmt.Println("predictability range and grows as branches get harder.")
	fmt.Println()
	return nil
}

func treeStudy(ctx context.Context, tr *trace.Trace, ets []int) error {
	t := stats.NewTable("Ablation: DEE tree construction (CD-MF speedup)",
		"tree", cols(ets))
	sim, err := newSim(ctx, tr, ilpsim.Options{Penalty: 1})
	if err != nil {
		return err
	}
	rows := []struct {
		name  string
		model ilpsim.Model
	}{
		{"static heuristic (§3.1)", ilpsim.ModelDEECDMF},
		{"greedy, uniform p (Thm 1)", ilpsim.Model{Strategy: dee.DEEPure, CDMode: ilpsim.CDMF}},
		{"dynamic, per-branch p (§3)", ilpsim.Model{Strategy: dee.DEEProfile, CDMode: ilpsim.CDMF}},
	}
	for _, row := range rows {
		for i, et := range ets {
			r, err := sim.RunContext(ctx, row.model, et)
			if err != nil {
				return err
			}
			t.Set(row.name, i, r.Speedup)
		}
	}
	fmt.Println(t.Render())
	fmt.Println("The paper replaced dynamic cp computation with the static heuristic,")
	fmt.Println("arguing the marginal gain would be small and noting (§5.3) that")
	fmt.Println("below-average-accuracy branches would ideally be DEE'd earlier —")
	fmt.Println("the dynamic per-branch tree quantifies exactly that headroom.")
	fmt.Println()
	return nil
}

func peStudy(ctx context.Context, tr *trace.Trace, ets []int) error {
	t := stats.NewTable("Ablation: processing elements per cycle (DEE-CD-MF speedup)",
		"PEs", cols(ets))
	for _, pes := range []int{1, 2, 4, 8, 16, 32, 64, 0} {
		name := fmt.Sprintf("%d", pes)
		if pes == 0 {
			name = "unlimited"
		}
		sim, err := newSim(ctx, tr, ilpsim.Options{Penalty: 1, PEs: pes})
		if err != nil {
			return err
		}
		for i, et := range ets {
			r, err := sim.RunContext(ctx, ilpsim.ModelDEECDMF, et)
			if err != nil {
				return err
			}
			t.Set(name, i, r.Speedup)
		}
	}
	fmt.Println(t.Render())
	fmt.Println("Speedups saturate well before the window's theoretical instruction")
	fmt.Println("capacity, matching the paper's note that implicit PE usage was low.")
	fmt.Println()
	return nil
}

func latencyStudy(ctx context.Context, tr *trace.Trace, ets []int) error {
	t := stats.NewTable("Ablation: instruction latencies (speedup at the largest ET)",
		"model", []string{"unit", "realistic", "retained%"})
	et := ets[len(ets)-1]
	for _, m := range []ilpsim.Model{ilpsim.ModelSP, ilpsim.ModelEE, ilpsim.ModelDEE,
		ilpsim.ModelSPCDMF, ilpsim.ModelDEECDMF} {
		unitSim, err := newSim(ctx, tr, ilpsim.Options{Penalty: 1})
		if err != nil {
			return err
		}
		realSim, err := newSim(ctx, tr, ilpsim.Options{Penalty: 1, Lat: ilpsim.RealisticLatencies()})
		if err != nil {
			return err
		}
		ru, err := unitSim.RunContext(ctx, m, et)
		if err != nil {
			return err
		}
		rr, err := realSim.RunContext(ctx, m, et)
		if err != nil {
			return err
		}
		t.Set(m.String(), 0, ru.Speedup)
		t.Set(m.String(), 1, rr.Speedup)
		t.Set(m.String(), 2, 100*rr.Speedup/ru.Speedup)
	}
	fmt.Println(t.Render())
	fmt.Println("§5.3: \"It is not yet clear what the net effect of assuming non-unit")
	fmt.Println("latencies on the DEE-CD-MF model will be\" — here is one data point.")
	fmt.Println()
	return nil
}

func cacheStudy(ctx context.Context, tr *trace.Trace, ets []int) error {
	t := stats.NewTable("Ablation: data cache (DEE-CD-MF speedup)",
		"memory", append(cols(ets), "miss%"))
	for _, withCache := range []bool{false, true} {
		name := "unit-latency memory"
		opts := ilpsim.Options{Penalty: 1}
		if withCache {
			name = "16KiB 4-way, 10-cycle miss"
			c := cache.Default16K()
			opts.Cache = &c
		}
		sim, err := newSim(ctx, tr, opts)
		if err != nil {
			return err
		}
		for i, et := range ets {
			r, err := sim.RunContext(ctx, ilpsim.ModelDEECDMF, et)
			if err != nil {
				return err
			}
			t.Set(name, i, r.Speedup)
		}
		t.Set(name, len(ets), 100*sim.CacheMissRate())
	}
	fmt.Println(t.Render())
	return nil
}

func cols(ets []int) []string {
	out := make([]string, len(ets))
	for i, et := range ets {
		out[i] = fmt.Sprintf("ET=%d", et)
	}
	return out
}

func penaltyStudy(ctx context.Context, tr *trace.Trace, ets []int) error {
	t := stats.NewTable("Ablation: misprediction restart penalty (DEE-CD-MF speedup)",
		"penalty", cols(ets))
	for _, pen := range []int{0, 1, 2, 4} {
		sim, err := newSim(ctx, tr, ilpsim.Options{Penalty: pen})
		if err != nil {
			return err
		}
		for i, et := range ets {
			r, err := sim.RunContext(ctx, ilpsim.ModelDEECDMF, et)
			if err != nil {
				return err
			}
			t.Set(fmt.Sprintf("%d cycles", pen), i, r.Speedup)
		}
	}
	fmt.Println(t.Render())
	return nil
}

func memoryStudy(ctx context.Context, tr *trace.Trace, ets []int) error {
	t := stats.NewTable("Ablation: memory disambiguation (DEE-CD-MF speedup; oracle in last column)",
		"memory model", append(cols(ets), "oracle"))
	for _, strict := range []bool{false, true} {
		name := "perfect (minimal deps)"
		if strict {
			name = "none (loads after all stores)"
		}
		sim, err := newSim(ctx, tr, ilpsim.Options{Penalty: 1, StrictMemory: strict})
		if err != nil {
			return err
		}
		for i, et := range ets {
			r, err := sim.RunContext(ctx, ilpsim.ModelDEECDMF, et)
			if err != nil {
				return err
			}
			t.Set(name, i, r.Speedup)
		}
		t.Set(name, len(ets), sim.Oracle().Speedup)
	}
	fmt.Println(t.Render())
	return nil
}

func designPStudy(ctx context.Context, tr *trace.Trace, ets []int) error {
	t := stats.NewTable("Ablation: static-tree design accuracy (DEE-CD-MF speedup; l/h at the largest ET)",
		"design p", append(cols(ets), "l", "h"))
	for _, dp := range []float64{0, 0.70, 0.80, 0.90, 0.95, 0.98} {
		name := fmt.Sprintf("%.2f", dp)
		if dp == 0 {
			name = "measured"
		}
		sim, err := newSim(ctx, tr, ilpsim.Options{Penalty: 1, DesignP: dp})
		if err != nil {
			return err
		}
		var last ilpsim.Result
		for i, et := range ets {
			r, err := sim.RunContext(ctx, ilpsim.ModelDEECDMF, et)
			if err != nil {
				return err
			}
			t.Set(name, i, r.Speedup)
			last = r
		}
		t.Set(name, len(ets), float64(last.TreeML))
		t.Set(name, len(ets)+1, float64(last.TreeH))
	}
	fmt.Println(t.Render())
	fmt.Println("A tree designed for too-low p wastes mainline depth on side paths;")
	fmt.Println("one designed for too-high p degenerates toward SP — the paper's")
	fmt.Println("motivation for measuring a characteristic accuracy (§3.1 step 1).")
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ablate:", err)
	os.Exit(1)
}
