// Command ablate runs the ablation studies for the reproduction's design
// choices:
//
//	-study penalty   misprediction restart penalty 0/1/2/4 cycles
//	                 (the paper's Levo penalty is 1, "may be reducible
//	                 to 0")
//	-study memory    perfect memory disambiguation (the paper's minimal
//	                 data dependencies) vs loads serialized behind all
//	                 stores
//	-study designp   static tree sized for the measured accuracy vs
//	                 deliberately mis-sized design points (§3.1 step 1-2:
//	                 "assume all branches are predicted with accuracy p")
//	-study pe        explicit processing-element (issue width) limits
//	                 (future work in §1; §5.1 notes the implicit PE use
//	                 stayed under 200)
//	-study latency   unit (the paper's assumption) vs realistic
//	                 multi-cycle latencies, per model
//	-study cache     unit-latency memory vs a 16 KiB data cache
//	-study tree      static heuristic vs the Theorem-1 greedy tree vs the
//	                 "theoretically perfect" dynamic per-branch tree the
//	                 paper deems impractical (§3)
//	-study all       everything
//
// Usage: ablate [-study all] [-bench xlisp] [-et 64,256] [-max 150000]
//
//	[-timeout 30s] [-deadlock-limit N]
//	[-journal run.journal | -resume run.journal] [-jobs N]
//	[-retries N] [-backoff 500ms]
//	[-memo-dir path] [-memo-mem bytes]
//
// Studies run under a cancellable context: SIGINT/SIGTERM or an expired
// -timeout stops the current simulation at the next checkpoint, the
// studies already printed stand, and the process exits non-zero with a
// structured error naming the model, ET, and cycle that was running.
//
// With -journal, every study runs as a supervised task whose rendered
// output is recorded durably on completion; a killed run restarts with
// -resume, replaying finished studies from the journal and re-running
// only the rest, with retryable failures retried -retries times under
// exponential -backoff.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"deesim/internal/bench"
	"deesim/internal/cache"
	"deesim/internal/dee"
	"deesim/internal/experiments"
	"deesim/internal/ilpsim"
	"deesim/internal/memo"
	"deesim/internal/obs"
	"deesim/internal/predictor"
	"deesim/internal/runx"
	"deesim/internal/stats"
	"deesim/internal/superv"
	"deesim/internal/trace"
)

// deadlockLimit is the -deadlock-limit flag value, applied to every
// simulator the studies construct.
var deadlockLimit int

// studyOutput is the JSON payload journaled per completed study.
type studyOutput struct {
	Study  string `json:"study"`
	Output string `json:"output"`
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with injectable args and streams (testability; see
// cmd/deesim for the same structure).
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ablate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		study       = fs.String("study", "all", "penalty, memory, designp, pe, latency, cache, tree, accuracy, or all")
		benchFlag   = fs.String("bench", "xlisp", "workload")
		etFlag      = fs.String("et", "64,256", "resource levels")
		max         = fs.Uint64("max", 150_000, "dynamic instruction cap")
		timeout     = fs.Duration("timeout", 0, "wall-clock limit for the whole run, e.g. 30s (0 = none)")
		dlFlag      = fs.Int("deadlock-limit", 0, fmt.Sprintf("abort a simulation after this many cycles without progress (0 = default %d)", ilpsim.DefaultDeadlockLimit))
		journalFlag = fs.String("journal", "", "record completed studies to a crash-safe run journal at this path")
		resumeFlag  = fs.String("resume", "", "resume an interrupted run from this journal (re-runs only unfinished studies)")
		jobsFlag    = fs.Int("jobs", 1, "worker-pool size for the journaled run (studies are independent)")
		retriesFlag = fs.Int("retries", 2, "retries per study after the first attempt (retryable failures only)")
		backoffFlag = fs.Duration("backoff", 500*time.Millisecond, "base retry backoff (exponential, deterministic jitter)")
		memoDir     = fs.String("memo-dir", "", "content-addressed result-cache directory: repeated runs replay cached studies (empty = caching off)")
		memoMem     = fs.Int64("memo-mem", 0, "in-memory result-cache budget in bytes (0 = 64 MiB; effective with -memo-dir)")
	)
	obsFlags := obs.RegisterCLIFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "ablate:", err)
		code := runx.ExitCode(err)
		obsFlags.DumpFlightOnExit("ablate", code)
		return code
	}
	if done, err := obsFlags.Handle("ablate", stdout, stderr); done {
		return 0
	} else if err != nil {
		return fail(err)
	}
	defer func() {
		if err := obsFlags.WriteMetrics(); err != nil {
			fmt.Fprintln(stderr, "ablate:", err)
		}
	}()
	stopFlush := obsFlags.FlushOnSignal(func(format string, args ...any) {
		fmt.Fprintf(stderr, "ablate: "+format+"\n", args...)
	})
	defer stopFlush()
	defer obsFlags.DumpFlightOnPanic("ablate")
	stopQuit := obsFlags.WatchQuit("ablate", func(format string, args ...any) {
		fmt.Fprintf(stderr, "ablate: "+format+"\n", args...)
	})
	defer stopQuit()
	deadlockLimit = *dlFlag
	if *journalFlag != "" && *resumeFlag != "" {
		return fail(fmt.Errorf("-journal and -resume are mutually exclusive (resume appends to the journal it is given)"))
	}

	ctx, stop := runx.MainContext(*timeout)
	defer stop()

	w, err := bench.ByName(*benchFlag)
	if err != nil {
		return fail(err)
	}
	prog, err := w.Inputs[0].Build(0)
	if err != nil {
		return fail(err)
	}
	tr, err := trace.RecordContext(ctx, prog, *max)
	if err != nil {
		return fail(err)
	}
	var ets []int
	for _, f := range strings.Split(*etFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			return fail(fmt.Errorf("bad ET %q", f))
		}
		ets = append(ets, v)
	}
	fmt.Fprintf(stdout, "workload %s: %d dynamic instructions\n\n", w.Name, tr.Len())

	studies := []struct {
		name string
		run  func(context.Context, io.Writer, *trace.Trace, []int) error
	}{
		{"penalty", penaltyStudy},
		{"memory", memoryStudy},
		{"designp", designPStudy},
		{"pe", peStudy},
		{"latency", latencyStudy},
		{"cache", cacheStudy},
		{"tree", treeStudy},
		{"accuracy", func(ctx context.Context, w io.Writer, _ *trace.Trace, ets []int) error {
			return accuracyStudy(ctx, w, ets)
		}},
	}
	var selected []int
	for i, st := range studies {
		if *study == st.name || *study == "all" {
			selected = append(selected, i)
		}
	}
	if len(selected) == 0 {
		return fail(fmt.Errorf("unknown study %q", *study))
	}

	var mm *memo.Memo
	if *memoDir != "" {
		if mm, err = memo.New(memo.Config{Dir: *memoDir, MemBytes: *memoMem}); err != nil {
			return fail(err)
		}
	}
	// Ablation studies do not decompose into matrix cells, so the memo
	// keys them whole: a study's rendered text is a pure function of
	// (study, workload, ET list, instruction cap, deadlock limit) under
	// the same sim-version salt cell keys use.
	etParts := make([]string, len(ets))
	for i, et := range ets {
		etParts[i] = strconv.Itoa(et)
	}
	runStudy := func(ctx context.Context, name string, run func(context.Context, io.Writer, *trace.Trace, []int) error, out io.Writer) error {
		if mm == nil {
			return run(ctx, out, tr, ets)
		}
		key := strings.Join([]string{
			"ablate", experiments.MemoSalt,
			"study=" + name,
			"bench=" + w.Name,
			"et=" + strings.Join(etParts, ","),
			"max=" + strconv.FormatUint(*max, 10),
			"deadlock=" + strconv.Itoa(*dlFlag),
		}, "|")
		data, err := mm.Do(ctx, key, func(ctx context.Context) ([]byte, error) {
			var b strings.Builder
			if err := run(ctx, &b, tr, ets); err != nil {
				return nil, err
			}
			return []byte(b.String()), nil
		})
		if err != nil {
			return err
		}
		_, err = out.Write(data)
		return err
	}

	if *journalFlag == "" && *resumeFlag == "" {
		for _, i := range selected {
			if err := runStudy(ctx, studies[i].name, studies[i].run, stdout); err != nil {
				return fail(err)
			}
		}
		return 0
	}

	// Supervised path: each study is a journaled task whose payload is
	// its rendered text; resume replays finished studies byte-for-byte.
	meta := map[string]string{
		"study": *study, "bench": *benchFlag, "et": *etFlag,
		"max": strconv.FormatUint(*max, 10),
	}
	var (
		j     *superv.Journal
		prior *superv.State
		path  = *journalFlag
	)
	if *resumeFlag != "" {
		path = *resumeFlag
		j, prior, err = superv.Resume(path, "ablate", meta)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "ablate: resuming %s: %s\n", path, prior.Summary(len(selected)))
	} else if j, err = superv.Create(path, "ablate", meta); err != nil {
		return fail(err)
	}
	defer j.Close()

	var tasks []superv.Task
	outputs := make(map[string]string, len(selected))
	for _, i := range selected {
		st := studies[i]
		tasks = append(tasks, superv.Task{
			Key: "study/" + st.name,
			Run: func(ctx context.Context) (any, error) {
				var b strings.Builder
				if err := runStudy(ctx, st.name, st.run, &b); err != nil {
					return nil, err
				}
				return studyOutput{Study: st.name, Output: b.String()}, nil
			},
		})
	}
	runErr := superv.Run(ctx, tasks, superv.Config{
		Jobs:    *jobsFlag,
		Journal: j,
		Prior:   prior,
		Retry:   superv.RetryPolicy{Attempts: *retriesFlag + 1, Backoff: *backoffFlag},
		OnDone: func(key string, payload json.RawMessage, replayed bool) {
			var out studyOutput
			if err := json.Unmarshal(payload, &out); err == nil {
				outputs[key] = out.Output
			}
		},
		OnRetry: func(key string, attempt int, delay time.Duration, err error) {
			fmt.Fprintf(stderr, "ablate: retrying %s (attempt %d after %s): %v\n", key, attempt, delay, err)
		},
	})
	// Print whatever completed — journaled and fresh alike — in the
	// canonical study order, so interrupt → resume reprints identically.
	for _, i := range selected {
		if out, ok := outputs["study/"+studies[i].name]; ok {
			io.WriteString(stdout, out)
		}
	}
	if runErr != nil {
		fmt.Fprintf(stderr, "ablate: %d of %d studies completed — resume with: ablate -resume %s\n",
			len(outputs), len(selected), path)
		return fail(runErr)
	}
	return 0
}

// newSim builds a simulator with the CLI-wide deadlock limit applied.
func newSim(ctx context.Context, tr *trace.Trace, opts ilpsim.Options) (*ilpsim.Sim, error) {
	if opts.DeadlockLimit == 0 {
		opts.DeadlockLimit = deadlockLimit
	}
	return ilpsim.NewContext(ctx, tr, predictor.NewTwoBit(), opts)
}

// accuracyStudy sweeps branch predictability on the synthetic workload:
// §5.3 — "There is a tradeoff between predictor accuracy and its cost
// versus degree of DEE realization and its cost ... The data suggest
// that some use of DEE is likely to be beneficial, regardless of the
// predictor accuracy."
func accuracyStudy(ctx context.Context, w io.Writer, ets []int) error {
	et := ets[len(ets)-1]
	t := stats.NewTable(
		fmt.Sprintf("Ablation: branch predictability vs DEE benefit (ET=%d)", et),
		"branch bias", []string{"accuracy%", "SP", "DEE-CD-MF", "DEE advantage"})
	for _, bias := range []int{60, 70, 80, 88, 94, 98} {
		prog, err := bench.BuildSynthetic(bench.SyntheticConfig{
			Iterations: 4000, BranchesPerIter: 4, Bias: bias, Seed: uint32(bias), Work: 3,
		})
		if err != nil {
			return err
		}
		tr, err := trace.RecordContext(ctx, prog, 0)
		if err != nil {
			return err
		}
		sim, err := newSim(ctx, tr, ilpsim.Options{Penalty: 1})
		if err != nil {
			return err
		}
		sp, err := sim.RunContext(ctx, ilpsim.ModelSP, et)
		if err != nil {
			return err
		}
		de, err := sim.RunContext(ctx, ilpsim.ModelDEECDMF, et)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("%d%%", bias)
		t.Set(name, 0, 100*sim.Accuracy())
		t.Set(name, 1, sp.Speedup)
		t.Set(name, 2, de.Speedup)
		t.Set(name, 3, de.Speedup/sp.Speedup)
	}
	fmt.Fprintln(w, t.Render())
	fmt.Fprintln(w, "DEE's advantage over plain prediction persists across the whole")
	fmt.Fprintln(w, "predictability range and grows as branches get harder.")
	fmt.Fprintln(w)
	return nil
}

func treeStudy(ctx context.Context, w io.Writer, tr *trace.Trace, ets []int) error {
	t := stats.NewTable("Ablation: DEE tree construction (CD-MF speedup)",
		"tree", cols(ets))
	sim, err := newSim(ctx, tr, ilpsim.Options{Penalty: 1})
	if err != nil {
		return err
	}
	rows := []struct {
		name  string
		model ilpsim.Model
	}{
		{"static heuristic (§3.1)", ilpsim.ModelDEECDMF},
		{"greedy, uniform p (Thm 1)", ilpsim.Model{Strategy: dee.DEEPure, CDMode: ilpsim.CDMF}},
		{"dynamic, per-branch p (§3)", ilpsim.Model{Strategy: dee.DEEProfile, CDMode: ilpsim.CDMF}},
	}
	for _, row := range rows {
		for i, et := range ets {
			r, err := sim.RunContext(ctx, row.model, et)
			if err != nil {
				return err
			}
			t.Set(row.name, i, r.Speedup)
		}
	}
	fmt.Fprintln(w, t.Render())
	fmt.Fprintln(w, "The paper replaced dynamic cp computation with the static heuristic,")
	fmt.Fprintln(w, "arguing the marginal gain would be small and noting (§5.3) that")
	fmt.Fprintln(w, "below-average-accuracy branches would ideally be DEE'd earlier —")
	fmt.Fprintln(w, "the dynamic per-branch tree quantifies exactly that headroom.")
	fmt.Fprintln(w)
	return nil
}

func peStudy(ctx context.Context, w io.Writer, tr *trace.Trace, ets []int) error {
	t := stats.NewTable("Ablation: processing elements per cycle (DEE-CD-MF speedup)",
		"PEs", cols(ets))
	for _, pes := range []int{1, 2, 4, 8, 16, 32, 64, 0} {
		name := fmt.Sprintf("%d", pes)
		if pes == 0 {
			name = "unlimited"
		}
		sim, err := newSim(ctx, tr, ilpsim.Options{Penalty: 1, PEs: pes})
		if err != nil {
			return err
		}
		for i, et := range ets {
			r, err := sim.RunContext(ctx, ilpsim.ModelDEECDMF, et)
			if err != nil {
				return err
			}
			t.Set(name, i, r.Speedup)
		}
	}
	fmt.Fprintln(w, t.Render())
	fmt.Fprintln(w, "Speedups saturate well before the window's theoretical instruction")
	fmt.Fprintln(w, "capacity, matching the paper's note that implicit PE usage was low.")
	fmt.Fprintln(w)
	return nil
}

func latencyStudy(ctx context.Context, w io.Writer, tr *trace.Trace, ets []int) error {
	t := stats.NewTable("Ablation: instruction latencies (speedup at the largest ET)",
		"model", []string{"unit", "realistic", "retained%"})
	et := ets[len(ets)-1]
	for _, m := range []ilpsim.Model{ilpsim.ModelSP, ilpsim.ModelEE, ilpsim.ModelDEE,
		ilpsim.ModelSPCDMF, ilpsim.ModelDEECDMF} {
		unitSim, err := newSim(ctx, tr, ilpsim.Options{Penalty: 1})
		if err != nil {
			return err
		}
		realSim, err := newSim(ctx, tr, ilpsim.Options{Penalty: 1, Lat: ilpsim.RealisticLatencies()})
		if err != nil {
			return err
		}
		ru, err := unitSim.RunContext(ctx, m, et)
		if err != nil {
			return err
		}
		rr, err := realSim.RunContext(ctx, m, et)
		if err != nil {
			return err
		}
		t.Set(m.String(), 0, ru.Speedup)
		t.Set(m.String(), 1, rr.Speedup)
		t.Set(m.String(), 2, 100*rr.Speedup/ru.Speedup)
	}
	fmt.Fprintln(w, t.Render())
	fmt.Fprintln(w, "§5.3: \"It is not yet clear what the net effect of assuming non-unit")
	fmt.Fprintln(w, "latencies on the DEE-CD-MF model will be\" — here is one data point.")
	fmt.Fprintln(w)
	return nil
}

func cacheStudy(ctx context.Context, w io.Writer, tr *trace.Trace, ets []int) error {
	t := stats.NewTable("Ablation: data cache (DEE-CD-MF speedup)",
		"memory", append(cols(ets), "miss%"))
	for _, withCache := range []bool{false, true} {
		name := "unit-latency memory"
		opts := ilpsim.Options{Penalty: 1}
		if withCache {
			name = "16KiB 4-way, 10-cycle miss"
			c := cache.Default16K()
			opts.Cache = &c
		}
		sim, err := newSim(ctx, tr, opts)
		if err != nil {
			return err
		}
		for i, et := range ets {
			r, err := sim.RunContext(ctx, ilpsim.ModelDEECDMF, et)
			if err != nil {
				return err
			}
			t.Set(name, i, r.Speedup)
		}
		t.Set(name, len(ets), 100*sim.CacheMissRate())
	}
	fmt.Fprintln(w, t.Render())
	return nil
}

func cols(ets []int) []string {
	out := make([]string, len(ets))
	for i, et := range ets {
		out[i] = fmt.Sprintf("ET=%d", et)
	}
	return out
}

func penaltyStudy(ctx context.Context, w io.Writer, tr *trace.Trace, ets []int) error {
	t := stats.NewTable("Ablation: misprediction restart penalty (DEE-CD-MF speedup)",
		"penalty", cols(ets))
	for _, pen := range []int{0, 1, 2, 4} {
		sim, err := newSim(ctx, tr, ilpsim.Options{Penalty: pen})
		if err != nil {
			return err
		}
		for i, et := range ets {
			r, err := sim.RunContext(ctx, ilpsim.ModelDEECDMF, et)
			if err != nil {
				return err
			}
			t.Set(fmt.Sprintf("%d cycles", pen), i, r.Speedup)
		}
	}
	fmt.Fprintln(w, t.Render())
	return nil
}

func memoryStudy(ctx context.Context, w io.Writer, tr *trace.Trace, ets []int) error {
	t := stats.NewTable("Ablation: memory disambiguation (DEE-CD-MF speedup; oracle in last column)",
		"memory model", append(cols(ets), "oracle"))
	for _, strict := range []bool{false, true} {
		name := "perfect (minimal deps)"
		if strict {
			name = "none (loads after all stores)"
		}
		sim, err := newSim(ctx, tr, ilpsim.Options{Penalty: 1, StrictMemory: strict})
		if err != nil {
			return err
		}
		for i, et := range ets {
			r, err := sim.RunContext(ctx, ilpsim.ModelDEECDMF, et)
			if err != nil {
				return err
			}
			t.Set(name, i, r.Speedup)
		}
		t.Set(name, len(ets), sim.Oracle().Speedup)
	}
	fmt.Fprintln(w, t.Render())
	return nil
}

func designPStudy(ctx context.Context, w io.Writer, tr *trace.Trace, ets []int) error {
	t := stats.NewTable("Ablation: static-tree design accuracy (DEE-CD-MF speedup; l/h at the largest ET)",
		"design p", append(cols(ets), "l", "h"))
	for _, dp := range []float64{0, 0.70, 0.80, 0.90, 0.95, 0.98} {
		name := fmt.Sprintf("%.2f", dp)
		if dp == 0 {
			name = "measured"
		}
		sim, err := newSim(ctx, tr, ilpsim.Options{Penalty: 1, DesignP: dp})
		if err != nil {
			return err
		}
		var last ilpsim.Result
		for i, et := range ets {
			r, err := sim.RunContext(ctx, ilpsim.ModelDEECDMF, et)
			if err != nil {
				return err
			}
			t.Set(name, i, r.Speedup)
			last = r
		}
		t.Set(name, len(ets), float64(last.TreeML))
		t.Set(name, len(ets)+1, float64(last.TreeH))
	}
	fmt.Fprintln(w, t.Render())
	fmt.Fprintln(w, "A tree designed for too-low p wastes mainline depth on side paths;")
	fmt.Fprintln(w, "one designed for too-high p degenerates toward SP — the paper's")
	fmt.Fprintln(w, "motivation for measuring a characteristic accuracy (§3.1 step 1).")
	return nil
}
