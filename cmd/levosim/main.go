// Command levosim runs the behavioral Levo microarchitecture model (§4
// of the paper) on the SPECint92 stand-in workloads and reports IPC,
// window behaviour (loop capture vs linear-code relocations), per-row
// predictor accuracy, and DEE side-path coverage of mispredictions.
//
// Usage:
//
//	levosim [-bench all|name,...] [-rows 32] [-cols 8] [-dee 3]
//	        [-penalty 1] [-max N] [-scale N] [-timeout 30s]
//	        [-deadlock-limit N]
//
// SIGINT/SIGTERM or an expired -timeout stops the run at the next
// cycle-loop checkpoint; rows completed so far are printed and the
// process exits non-zero with the structured error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"deesim/internal/bench"
	"deesim/internal/levo"
	"deesim/internal/obs"
	"deesim/internal/runx"
	"deesim/internal/stats"
	"deesim/internal/unroll"
)

func main() {
	var (
		benchFlag = flag.String("bench", "all", "workloads: all or comma-separated names")
		rows      = flag.Int("rows", 32, "IQ length (static instructions)")
		cols      = flag.Int("cols", 8, "IQ iteration columns")
		deePaths  = flag.Int("dee", 3, "DEE side paths")
		penalty   = flag.Int("penalty", 1, "misprediction restart penalty (cycles)")
		max       = flag.Uint64("max", 300_000, "dynamic instruction cap per input (0 = to completion)")
		scale     = flag.Int("scale", 0, "workload input scale (0 = default)")
		unrollFlg = flag.Bool("unroll", false, "apply the §4.2 machine-code loop-unrolling filter (target 3/4 of the IQ)")
		costFlg   = flag.Bool("cost", false, "print the §4.3 hardware cost estimates and exit")
		timeout   = flag.Duration("timeout", 0, "wall-clock limit for the whole run, e.g. 30s (0 = none)")
		dlFlag    = flag.Int("deadlock-limit", 0, "abort a simulation after this many cycles without progress (0 = default 2^22)")
	)
	obsFlags = obs.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()
	if done, err := obsFlags.Handle("levosim", os.Stdout, os.Stderr); done {
		return
	} else if err != nil {
		fatal(err)
	}
	defer func() {
		if err := obsFlags.WriteMetrics(); err != nil {
			fmt.Fprintln(os.Stderr, "levosim:", err)
		}
	}()
	stopFlush := obsFlags.FlushOnSignal(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "levosim: "+format+"\n", args...)
	})
	defer stopFlush()
	defer obsFlags.DumpFlightOnPanic("levosim")
	stopQuit := obsFlags.WatchQuit("levosim", func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "levosim: "+format+"\n", args...)
	})
	defer stopQuit()

	cfg := levo.Config{
		Rows: *rows, Cols: *cols, DEEPaths: *deePaths,
		Penalty: *penalty, MaxInstrs: *max, DeadlockLimit: *dlFlag,
	}

	ctx, stop := runx.MainContext(*timeout)
	defer stop()

	if *costFlg {
		fmt.Println("Hardware cost estimates (§4.3 of the paper):")
		fmt.Println()
		for _, cc := range []levo.CostConfig{levo.PaperET32(), levo.PaperET100()} {
			fmt.Println(levo.EstimateCost(cc))
			fmt.Println()
		}
		fmt.Printf("marginal 1-column DEE path: %.2fM transistors\n",
			float64(levo.MarginalDEEPathCost(*rows))/1e6)
		return
	}

	var ws []bench.Workload
	if *benchFlag == "all" {
		ws = bench.All()
	} else {
		for _, f := range strings.Split(*benchFlag, ",") {
			w, err := bench.ByName(strings.TrimSpace(f))
			if err != nil {
				fatal(err)
			}
			ws = append(ws, w)
		}
	}

	fmt.Printf("Levo behavioral model: IQ %dx%d, %d DEE paths, penalty %d\n\n",
		cfg.Rows, cfg.Cols, cfg.DEEPaths, cfg.Penalty)
	t := stats.NewTable("", "workload", []string{
		"insts", "cycles", "IPC", "accuracy%", "reloc", "passes", "DEE-cov%", "mismatch",
	})
	var ipcs []float64
	for _, w := range ws {
		for _, in := range w.Inputs {
			prog, err := in.Build(*scale)
			if err != nil {
				fatal(err)
			}
			if *unrollFlg {
				opt := unroll.DefaultOptions()
				opt.TargetSize = 3 * cfg.Rows / 4
				opt.MaxBody = opt.TargetSize / 2
				var rep unroll.Report
				prog, rep, err = unroll.Apply(prog, opt)
				if err != nil {
					fatal(err)
				}
				fmt.Printf("%s/%s: %s\n", w.Name, in.Name, rep)
			}
			m, err := levo.NewContext(ctx, prog, cfg)
			if err != nil {
				partial(t, ipcs)
				fatal(err)
			}
			r, err := m.RunContext(ctx)
			if err != nil {
				partial(t, ipcs)
				fatal(err)
			}
			name := w.Name + "/" + in.Name
			t.Set(name, 0, float64(r.Insts))
			t.Set(name, 1, float64(r.Cycles))
			t.Set(name, 2, r.IPC)
			t.Set(name, 3, 100*r.Accuracy)
			t.Set(name, 4, float64(r.Relocations))
			t.Set(name, 5, float64(r.Passes))
			cov := 0.0
			if r.Mispredicts > 0 {
				cov = 100 * float64(r.DEECovered) / float64(r.Mispredicts)
			}
			t.Set(name, 6, cov)
			t.Set(name, 7, float64(r.ValueMismatches))
			ipcs = append(ipcs, r.IPC)
		}
	}
	t.SetFormat("%.2f")
	fmt.Println(t.Render())
	hm, err := stats.HarmonicMean(ipcs)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("harmonic-mean IPC: %.2f\n", hm)
}

// partial prints the rows completed before a failure, so a cancelled
// run still reports what it measured.
func partial(t *stats.Table, ipcs []float64) {
	if len(ipcs) == 0 {
		return
	}
	t.SetFormat("%.2f")
	fmt.Printf("partial results (%d inputs completed):\n", len(ipcs))
	fmt.Println(t.Render())
}

// obsFlags is package-level so fatal (which bypasses main's defers via
// os.Exit) can still leave a flight-recorder dump behind.
var obsFlags *obs.CLIFlags

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "levosim:", err)
	if obsFlags != nil {
		obsFlags.DumpFlightOnExit("levosim", 1)
	}
	os.Exit(1)
}
