// Command tracegen reports the dynamic-trace characteristics of the
// workloads that the paper's methodology (§5.1, §4.2) relies on: branch
// density, mean branch-path length (≈5 instructions in SPECint92), taken
// rates, loop capture rates for the Levo IQ, and branch predictor
// accuracies (the paper's 2-bit counters averaged 90.53%).
//
// Usage:
//
//	tracegen [-bench all|name,...] [-max N] [-scale N] [-predictors]
//	         [-iq 32,64] [-save dir] [-timeout 30s] [-deadlock-limit N]
//
// SIGINT/SIGTERM or an expired -timeout stops trace capture at the next
// checkpoint; rows completed so far are printed before the non-zero
// exit. (-deadlock-limit is accepted for CLI uniformity; trace capture
// is bounded by -max and the context rather than a cycle watchdog.)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"deesim/internal/bench"
	"deesim/internal/obs"
	"deesim/internal/predictor"
	"deesim/internal/runx"
	"deesim/internal/stats"
	"deesim/internal/trace"
)

func main() {
	var (
		benchFlag = flag.String("bench", "all", "workloads: all or comma-separated names")
		max       = flag.Uint64("max", 0, "dynamic instruction cap (0 = to completion)")
		scale     = flag.Int("scale", 0, "workload input scale")
		preds     = flag.Bool("predictors", false, "compare predictor accuracies")
		iq        = flag.String("iq", "32,64", "IQ sizes for loop capture rates")
		saveDir   = flag.String("save", "", "directory to write .trace snapshot files into (gzip'd, replayable)")
		timeout   = flag.Duration("timeout", 0, "wall-clock limit for the whole run, e.g. 30s (0 = none)")
		_         = flag.Int("deadlock-limit", 0, "accepted for CLI uniformity; capture is bounded by -max and -timeout")
	)
	obsFlags = obs.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()
	if done, err := obsFlags.Handle("tracegen", os.Stdout, os.Stderr); done {
		return
	} else if err != nil {
		fatal(err)
	}
	defer func() {
		if err := obsFlags.WriteMetrics(); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
		}
	}()
	stopFlush := obsFlags.FlushOnSignal(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	})
	defer stopFlush()
	defer obsFlags.DumpFlightOnPanic("tracegen")
	stopQuit := obsFlags.WatchQuit("tracegen", func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	})
	defer stopQuit()

	ctx, stop := runx.MainContext(*timeout)
	defer stop()
	rowsDone := 0

	var ws []bench.Workload
	if *benchFlag == "all" {
		ws = bench.All()
	} else {
		for _, f := range strings.Split(*benchFlag, ",") {
			w, err := bench.ByName(strings.TrimSpace(f))
			if err != nil {
				fatal(err)
			}
			ws = append(ws, w)
		}
	}
	var iqSizes []int
	for _, f := range strings.Split(*iq, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			fatal(fmt.Errorf("bad IQ size %q", f))
		}
		iqSizes = append(iqSizes, v)
	}

	cols := []string{"insts", "paths", "density", "path-len", "taken%"}
	for _, s := range iqSizes {
		cols = append(cols, fmt.Sprintf("capture@%d%%", s))
	}
	t := stats.NewTable("Dynamic trace characteristics", "workload/input", cols)
	t.SetFormat("%.2f")

	var predTable *stats.Table
	predNames := []string{"2bit", "pap2", "pap4", "pap8", "taken"}
	if *preds {
		predTable = stats.NewTable("Predictor accuracy (%)", "workload/input", predNames)
		predTable.SetFormat("%.2f")
	}

	for _, w := range ws {
		for _, in := range w.Inputs {
			prog, err := in.Build(*scale)
			if err != nil {
				fatal(err)
			}
			tr, err := trace.RecordContext(ctx, prog, *max)
			if err != nil {
				if rowsDone > 0 {
					fmt.Printf("partial results (%d inputs completed):\n", rowsDone)
					fmt.Println(t.Render())
				}
				fatal(err)
			}
			if *saveDir != "" {
				path := filepath.Join(*saveDir, w.Name+"_"+in.Name+".trace")
				if err := tr.SaveFile(path); err != nil {
					fatal(err)
				}
				fmt.Printf("wrote %s (%d instructions)\n", path, tr.Len())
			}
			st := tr.ComputeStats()
			name := w.Name + "/" + in.Name
			t.Set(name, 0, float64(st.DynInsts))
			t.Set(name, 1, float64(tr.NumPaths()))
			t.Set(name, 2, st.BranchDensity)
			t.Set(name, 3, st.MeanPathLen)
			t.Set(name, 4, 100*st.TakenRate)
			for i, s := range iqSizes {
				t.Set(name, 5+i, 100*tr.LoopCaptureRate(s))
			}
			if *preds {
				for i, pn := range predNames {
					p, err := predictor.New(pn)
					if err != nil {
						fatal(err)
					}
					acc, _ := predictor.Accuracy(tr, p)
					predTable.Set(name, i, 100*acc)
				}
			}
			rowsDone++
		}
	}
	fmt.Println(t.Render())
	if *preds {
		fmt.Println(predTable.Render())
	}
}

// obsFlags is package-level so fatal (which bypasses main's defers via
// os.Exit) can still leave a flight-recorder dump behind.
var obsFlags *obs.CLIFlags

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	if obsFlags != nil {
		obsFlags.DumpFlightOnExit("tracegen", 1)
	}
	os.Exit(1)
}
