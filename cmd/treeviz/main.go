// Command treeviz regenerates the paper's analytic figures:
//
//	-figure 1   the SP / EE / DEE speculation trees of Figure 1
//	            (p = 0.70, six branch-path resources), with each path's
//	            cumulative probability and resource-assignment order;
//	-figure 2   the static DEE tree of Figure 2 (p = 0.90, ET = 34:
//	            mainline l = 24, DEE region hDEE = 4);
//	-sweep      the static-tree geometry across p and ET (the §3.1
//	            closed forms).
//
// Custom points: treeviz -p 0.85 -et 48 [-strategy greedy|sp|ee|static]
//
// Like the simulator CLIs, treeviz honours -timeout and SIGINT/SIGTERM:
// tree construction runs under a context and a runaway build (huge -et)
// is abandoned with a structured error and a non-zero exit.
// (-deadlock-limit is accepted for CLI uniformity; tree construction
// has no cycle loop to watch.)
package main

import (
	"flag"
	"fmt"
	"os"

	"deesim/internal/dee"
	"deesim/internal/obs"
	"deesim/internal/runx"
	"deesim/internal/stats"
)

func main() {
	var (
		figure   = flag.Int("figure", 0, "paper figure to regenerate (1 or 2)")
		sweep    = flag.Bool("sweep", false, "print static tree geometry sweep")
		p        = flag.Float64("p", 0.9, "branch prediction accuracy")
		et       = flag.Int("et", 34, "branch path resources")
		strategy = flag.String("strategy", "greedy", "tree: greedy, sp, ee, static")
		timeout  = flag.Duration("timeout", 0, "wall-clock limit, e.g. 10s (0 = none)")
		_        = flag.Int("deadlock-limit", 0, "accepted for CLI uniformity; tree construction has no cycle loop")
	)
	obsFlags := obs.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()
	if done, err := obsFlags.Handle("treeviz", os.Stdout, os.Stderr); done {
		return
	} else if err != nil {
		fmt.Fprintln(os.Stderr, "treeviz:", err)
		os.Exit(1)
	}
	defer func() {
		if err := obsFlags.WriteMetrics(); err != nil {
			fmt.Fprintln(os.Stderr, "treeviz:", err)
		}
	}()
	stopFlush := obsFlags.FlushOnSignal(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "treeviz: "+format+"\n", args...)
	})
	defer stopFlush()
	defer obsFlags.DumpFlightOnPanic("treeviz")
	stopQuit := obsFlags.WatchQuit("treeviz", func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "treeviz: "+format+"\n", args...)
	})
	defer stopQuit()

	ctx, stop := runx.MainContext(*timeout)
	defer stop()

	// The analytic figures are pure computation; run them on a worker
	// goroutine so a signal or deadline still interrupts a huge -et.
	done := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- runx.FromPanic(r, "treeviz")
			}
		}()
		switch {
		case *figure == 1:
			figure1()
		case *figure == 2:
			figure2()
		case *sweep:
			geometrySweep()
		default:
			done <- custom(*strategy, *p, *et)
			return
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "treeviz:", err)
			obsFlags.DumpFlightOnExit("treeviz", 1)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "treeviz:", runx.CtxErr(ctx, "treeviz"))
		obsFlags.DumpFlightOnExit("treeviz", 1)
		os.Exit(1)
	}
}

func figure1() {
	const p = 0.70
	const et = 6
	fmt.Printf("Figure 1: the three speculative execution strategies (p=%.2f, %d branch path resources)\n\n", p, et)

	fmt.Println("Single Path (SP) — the all-predicted chain:")
	sp := dee.BuildSP(p, et)
	fmt.Println(sp.Summary())
	fmt.Println(sp.Render())

	fmt.Println("Eager Execution (EE) — both sides, complete levels:")
	ee := dee.BuildEE(p, et)
	fmt.Println(ee.Summary())
	fmt.Println(ee.Render())

	fmt.Println("Disjoint Eager Execution (DEE) — greatest marginal benefit:")
	d := dee.BuildGreedy(p, et)
	fmt.Println(d.Summary())
	fmt.Println(d.Render())
	fmt.Println("Note the paper's walk-through: after three mainline paths the next")
	fmt.Println("resource goes to the not-predicted root arc (cp .30) in preference")
	fmt.Println("to the fourth mainline path (cp .24) — path 4 in the figure.")
}

func figure2() {
	const p = 0.90
	const et = 34
	l, h := dee.StaticShape(p, et)
	fmt.Printf("Figure 2: static DEE assignment tree for p=%.2f, ET=%d branch paths\n\n", p, et)
	fmt.Printf("closed forms: log_p(1-p) = %.3f, ET(p,h=%d) = %.2f, l(p,h=%d) = %.2f\n",
		dee.LogP1MP(p), h, dee.StaticET(p, h), h, dee.StaticL(p, h))
	fmt.Printf("shape: mainline l = %d paths, DEE region hDEE = wDEE = %d (triangle of %d side paths)\n\n",
		l, h, h*(h+1)/2)
	tr := dee.BuildStatic(p, et)
	fmt.Println(tr.Summary())
	fmt.Println(tr.Render())
}

func geometrySweep() {
	fmt.Println("Static DEE tree geometry (§3.1 closed forms): mainline l / DEE height h")
	ps := []float64{0.80, 0.85, 0.90, 0.9053, 0.95}
	ets := []int{8, 16, 32, 64, 100, 128, 256}
	cols := make([]string, len(ets))
	for i, e := range ets {
		cols[i] = fmt.Sprintf("ET=%d", e)
	}
	lt := stats.NewTable("", "p", cols)
	lt.SetFormat("%.0f")
	for _, pv := range ps {
		row := fmt.Sprintf("p=%.4f (l)", pv)
		rowH := fmt.Sprintf("p=%.4f (h)", pv)
		for i, e := range ets {
			l, h := dee.StaticShape(pv, e)
			lt.Set(row, i, float64(l))
			lt.Set(rowH, i, float64(h))
		}
	}
	fmt.Println(lt.Render())
	fmt.Println("h = 0 rows are SP-degenerate trees: the reason the paper's Figure 5")
	fmt.Println("curves for DEE and SP coincide at and below 16 branch paths.")
}

func custom(strategy string, p float64, et int) error {
	var tr *dee.Tree
	switch strategy {
	case "greedy":
		tr = dee.BuildGreedy(p, et)
	case "sp":
		tr = dee.BuildSP(p, et)
	case "ee":
		tr = dee.BuildEE(p, et)
	case "static":
		tr = dee.BuildStatic(p, et)
	default:
		return runx.Newf(runx.KindInvalidInput, "treeviz", "unknown strategy %q", strategy)
	}
	fmt.Println(tr.Summary())
	fmt.Println(tr.Render())
	return nil
}
