package main

// Cluster end-to-end tests against the real binaries: one deesim-coord
// coordinator and a fleet of deesimd workers as subprocesses. The
// fault drills are the ones the fabric exists for — SIGKILL a worker
// mid-sweep, SIGKILL the coordinator mid-sweep — and the acceptance
// bar is byte-identical merged results against an uninterrupted
// single-node control run.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"deesim/internal/client"
	"deesim/internal/server"
	"deesim/internal/superv"
)

var (
	binCoord  string
	binWorker string
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "coord-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mktemp:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	binCoord = filepath.Join(dir, "deesim-coord")
	binWorker = filepath.Join(dir, "deesimd")
	for target, src := range map[string]string{binCoord: ".", binWorker: "../deesimd"} {
		if out, err := exec.Command("go", "build", "-o", target, src).CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "build %s: %v\n%s", src, err, out)
			os.RemoveAll(dir)
			os.Exit(1)
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// proc is one running subprocess of the cluster.
type proc struct {
	cmd  *exec.Cmd
	addr string
	log  string
}

func startProc(t *testing.T, bin, stateDir string, args ...string) *proc {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	logPath := filepath.Join(stateDir, "..", filepath.Base(stateDir)+".log")
	logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer logf.Close()
	args = append([]string{"-addr-file", addrFile, "-state", stateDir}, args...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(bytes.TrimSpace(data)) > 0 {
			return &proc{cmd: cmd, addr: strings.TrimSpace(string(data)), log: logPath}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never published its address (log: %s)", bin, readLog(logPath))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func readLog(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return err.Error()
	}
	return string(data)
}

// reservePort grabs a free TCP port and releases it, so a coordinator
// can be killed and restarted on the same address (the workers keep
// dialing it).
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startCoord launches deesim-coord with fast failure detection.
func startCoord(t *testing.T, stateDir, addr string) *proc {
	t.Helper()
	return startProc(t, binCoord, stateDir,
		"-addr", addr,
		"-heartbeat-timeout", "500ms",
		"-lease-ttl", "30s",
		"-cell-retries", "4",
		"-backoff", "100ms",
		"-metrics-out", filepath.Join(stateDir, "metrics.prom"),
	)
}

// startWorker launches a deesimd worker registered with the coordinator.
func startWorker(t *testing.T, stateDir, coordURL string) *proc {
	t.Helper()
	return startProc(t, binWorker, stateDir,
		"-addr", "127.0.0.1:0",
		"-coord", coordURL,
		"-heartbeat", "100ms",
		"-cell-jobs", "1",
		"-cell-slots", "1",
		"-metrics-out", filepath.Join(stateDir, "metrics.prom"),
	)
}

func coordClient(addr string) *client.Client {
	c := client.New("http://" + addr)
	c.Retry = superv.RetryPolicy{Attempts: 8, Backoff: 100 * time.Millisecond}
	return c
}

// clusterSpec is a 6-cell sweep (2 models × 3 resource points). With
// one cell slot per worker the sweep runs in waves, which keeps every
// worker leased long enough for a mid-sweep SIGKILL to land on an
// outstanding lease deterministically.
func clusterSpec(cellDelay string) server.Spec {
	return server.Spec{
		Workloads: []string{"xlisp"},
		Models:    []string{"SP", "DEE-CD-MF"},
		Resources: []int{8, 32, 64},
		MaxInstrs: 3000,
		CellDelay: cellDelay,
	}
}

// controlResult runs the sweep on a lone deesimd (no coordinator) and
// returns the result bytes every distributed run must reproduce.
func controlResult(t *testing.T, ctx context.Context) []byte {
	t.Helper()
	d := startProc(t, binWorker, filepath.Join(t.TempDir(), "control"), "-addr", "127.0.0.1:0")
	c := coordClient(d.addr)
	st, err := c.Submit(ctx, clusterSpec(""))
	if err != nil {
		t.Fatalf("control submit: %v", err)
	}
	if _, err := c.Wait(ctx, st.ID, 50*time.Millisecond); err != nil {
		t.Fatalf("control wait: %v\nlog: %s", err, readLog(d.log))
	}
	raw, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("control result: %v", err)
	}
	d.cmd.Process.Kill()
	d.cmd.Wait()
	return raw
}

// waitFleet polls the coordinator until n workers are registered.
func waitFleet(t *testing.T, addr string, n int) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/v1/workers")
		if err == nil {
			var body bytes.Buffer
			body.ReadFrom(resp.Body)
			resp.Body.Close()
			if bytes.Count(body.Bytes(), []byte(`"id"`)) >= n {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached %d workers", n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// metricValue scrapes one counter/gauge from the coordinator's
// /metrics (0 if the series has not appeared yet).
func metricValue(t *testing.T, addr, name string) float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	for _, line := range strings.Split(body.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("unparsable metric %s: %q", name, line)
			}
			return v
		}
	}
	return 0
}

// TestClusterWorkerKillByteIdentical: three workers run a paced sweep,
// one is SIGKILL'd mid-flight. Its leases expire via heartbeat
// staleness, the cells re-dispatch, and the merged result is
// byte-identical to the single-node control. Fleet progress series are
// asserted monotone while the sweep runs.
func TestClusterWorkerKillByteIdentical(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	control := controlResult(t, ctx)

	root := t.TempDir()
	coord := startCoord(t, filepath.Join(root, "coord"), "127.0.0.1:0")
	coordURL := "http://" + coord.addr
	workers := make([]*proc, 3)
	for i := range workers {
		workers[i] = startWorker(t, filepath.Join(root, fmt.Sprintf("w%d", i)), coordURL)
	}
	waitFleet(t, coord.addr, 3)

	c := coordClient(coord.addr)
	st, err := c.Submit(ctx, clusterSpec("600ms"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Wait for mid-sweep (≥1 durable cell, ≥1 outstanding), watching the
	// fleet series for monotonicity as we go.
	var lastDone, lastGranted float64
	killed := false
	for {
		cur, err := c.Status(ctx, st.ID)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		done := metricValue(t, coord.addr, "deesim_coord_cells_done_total")
		granted := metricValue(t, coord.addr, "deesim_coord_leases_granted_total")
		if done < lastDone || granted < lastGranted {
			t.Fatalf("fleet series regressed mid-sweep: done %v->%v granted %v->%v", lastDone, done, lastGranted, granted)
		}
		if granted < done {
			t.Fatalf("granted %v < done %v: completions without leases", granted, done)
		}
		lastDone, lastGranted = done, granted

		if !killed && cur.CellsDone >= 1 && cur.CellsDone < cur.CellsTotal {
			workers[0].cmd.Process.Kill() // SIGKILL: heartbeats stop mid-lease
			workers[0].cmd.Wait()
			killed = true
		}
		if cur.State == server.StateDone {
			if !killed {
				t.Fatal("sweep finished before the kill window; raise cell_delay")
			}
			break
		}
		if cur.State == server.StateFailed {
			t.Fatalf("sweep failed: %s\ncoord log: %s", cur.Error, readLog(coord.log))
		}
		if ctx.Err() != nil {
			t.Fatalf("sweep stuck (last: %+v)\ncoord log: %s", cur, readLog(coord.log))
		}
		time.Sleep(50 * time.Millisecond)
	}

	raw, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if !bytes.Equal(raw, control) {
		t.Fatalf("distributed result differs from single-node control (%d vs %d bytes)", len(raw), len(control))
	}
	if ev := metricValue(t, coord.addr, "deesim_coord_worker_evictions_total"); ev < 1 {
		t.Errorf("worker evictions = %v, want ≥1 after the kill", ev)
	}
	if re := metricValue(t, coord.addr, "deesim_coord_redispatches_total"); re < 1 {
		t.Errorf("redispatches = %v, want ≥1 after the kill", re)
	}

	// Drain the survivors: SIGTERM everywhere must exit 0.
	for _, p := range append(workers[1:], coord) {
		p.cmd.Process.Signal(syscall.SIGTERM)
	}
	for _, p := range append(workers[1:], coord) {
		done := make(chan error, 1)
		go func(p *proc) { done <- p.cmd.Wait() }(p)
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("drain exit: %v (log: %s)", err, readLog(p.log))
			}
		case <-time.After(30 * time.Second):
			p.cmd.Process.Kill()
			t.Errorf("process did not drain (log: %s)", readLog(p.log))
		}
	}
	// The signal-flush satellite: -metrics-out written on SIGTERM.
	if _, err := os.Stat(filepath.Join(root, "coord", "metrics.prom")); err != nil {
		t.Errorf("coordinator metrics not flushed on SIGTERM: %v", err)
	}
}

// TestClusterCoordinatorKillResume: SIGKILL the coordinator mid-sweep,
// restart it on the same address over the same state directory. The
// workers re-register through the heartbeat 400 path, the sweep
// resumes from its journal without re-running finished cells, and the
// merged result is byte-identical to the control.
func TestClusterCoordinatorKillResume(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	control := controlResult(t, ctx)

	root := t.TempDir()
	coordAddr := reservePort(t)
	coordState := filepath.Join(root, "coord")
	coord := startCoord(t, coordState, coordAddr)
	coordURL := "http://" + coordAddr
	w1 := startWorker(t, filepath.Join(root, "w1"), coordURL)
	w2 := startWorker(t, filepath.Join(root, "w2"), coordURL)
	waitFleet(t, coordAddr, 2)

	c := coordClient(coordAddr)
	st, err := c.Submit(ctx, clusterSpec("600ms"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	for {
		cur, err := c.Status(ctx, st.ID)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if cur.CellsDone >= 1 && cur.CellsDone < cur.CellsTotal {
			break
		}
		if cur.State == server.StateDone {
			t.Fatal("sweep finished before the kill window; raise cell_delay")
		}
		if ctx.Err() != nil {
			t.Fatalf("never reached mid-sweep (last: %+v)", cur)
		}
		time.Sleep(20 * time.Millisecond)
	}
	coord.cmd.Process.Kill() // SIGKILL: journal survives, in-memory state does not
	coord.cmd.Wait()

	coord2 := startCoord(t, coordState, coordAddr)
	final, err := coordClient(coordAddr).Wait(ctx, st.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("wait after coordinator restart: %v\nlog: %s", err, readLog(coord2.log))
	}
	if !final.Resumed {
		t.Errorf("sweep not marked resumed after coordinator restart: %+v", final)
	}
	raw, err := coordClient(coordAddr).Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result after restart: %v", err)
	}
	if !bytes.Equal(raw, control) {
		t.Fatalf("resumed distributed result differs from control (%d vs %d bytes)", len(raw), len(control))
	}
	if !strings.Contains(readLog(coord2.log), "resuming") {
		t.Error("restarted coordinator log never mentions resuming the journaled sweep")
	}

	for _, p := range []*proc{w1, w2, coord2} {
		p.cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func(p *proc) { done <- p.cmd.Wait() }(p)
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			p.cmd.Process.Kill()
			t.Errorf("process did not drain (log: %s)", readLog(p.log))
		}
	}
}
