// Command deesim-coord is the distributed-sweep coordinator: it
// accepts sweep submissions on the same /v1/jobs API deesimd speaks,
// decomposes each sweep into matrix cells, leases the cells across a
// fleet of registered deesimd workers (POST /v1/workers to join), and
// merges the returned results through the exact single-node
// aggregation path — so the merged result file is byte-identical to
// what one deesimd would have produced.
//
// Usage:
//
//	deesim-coord [-addr 127.0.0.1:8525] [-addr-file path] [-state dir]
//	             [-queue N] [-lease-ttl d] [-heartbeat-timeout d]
//	             [-cell-retries N] [-backoff d] [-straggler-factor F]
//	             [-retry-budget N] [-retry-budget-refill F]
//	             [-cell-timeout d] [-request-timeout d] [-drain-grace d]
//	             [-retry-after d] [-log-level info] [-log-json]
//	             [-metrics-out path] [-flight-out path] [-version] [-fsck]
//
// Overload policy: sweeps carry the same priority/deadline spec fields
// deesimd understands; a sweep past its absolute deadline is refused at
// submission, cancelled mid-run, and never re-dispatched (typed
// "deadline"). -retry-budget caps total cell re-dispatch amplification
// across all sweeps (token bucket refilled at -retry-budget-refill
// tokens/sec; 0 = unlimited, the historical behavior).
//
// Fault tolerance: every lease grant and cell completion is fsync'd to
// a per-sweep journal before it takes effect, so a SIGKILL'd
// coordinator resumes its sweep without re-running finished cells.
// Workers that crash, stall, or partition lose their leases (TTL or
// heartbeat staleness) and their cells re-dispatch elsewhere; straggler
// cells are speculatively duplicated near the end of a sweep, first
// durable completion wins. SIGINT/SIGTERM drains gracefully and
// flushes -metrics-out immediately.
//
// Tracing: GET /v1/trace/<sweep> gathers the sweep's span fragments
// from the coordinator's own log and every registered worker, corrects
// per-worker clock skew against the lease-dispatch timestamps, and
// returns one Perfetto-loadable timeline (deesimctl trace fetch, with
// -server pointed here). The flight recorder defaults into -state and
// is dumped on panic, SIGQUIT, nonzero exit, and continuously, as on
// deesimd.
//
// With -fsck the coordinator does not serve: it integrity-checks the
// -state directory and exits, corrupt-kind code if anything is corrupt
// or quarantined.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"deesim/internal/budget"
	"deesim/internal/coord"
	"deesim/internal/fsck"
	"deesim/internal/memo"
	"deesim/internal/obs"
	"deesim/internal/runx"
	"deesim/internal/superv"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("deesim-coord", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addrFlag     = fs.String("addr", "127.0.0.1:8525", "listen address (host:port; port 0 picks a free one)")
		addrFileFlag = fs.String("addr-file", "", "write the bound listen address to this file once serving")
		stateFlag    = fs.String("state", "deesim-coord.state", "durable state directory (sweep specs, journals, results)")
		queueFlag    = fs.Int("queue", 8, "admission-queue depth; submissions beyond it are shed with 429")
		leaseTTL     = fs.Duration("lease-ttl", 2*time.Minute, "wall-clock bound per cell lease; expired leases re-dispatch")
		hbTimeout    = fs.Duration("heartbeat-timeout", 15*time.Second, "heartbeat staleness that declares a worker lost")
		cellRetries  = fs.Int("cell-retries", 2, "re-dispatches per cell beyond the first attempt")
		backoffFlag  = fs.Duration("backoff", 250*time.Millisecond, "base re-dispatch backoff per cell")
		stragglerF   = fs.Float64("straggler-factor", 3, "speculate a lease running longer than this multiple of the median cell time (0 disables)")
		retryBudget  = fs.Int("retry-budget", 0, "total cell re-dispatch tokens shared across all sweeps (0 = unlimited)")
		budgetRefill = fs.Float64("retry-budget-refill", 0, "retry-budget refill rate in tokens/sec")
		cellTimeout  = fs.Duration("cell-timeout", 0, "HTTP budget per cell dispatch (0 = lease-ttl + 10s)")
		reqTimeout   = fs.Duration("request-timeout", 10*time.Second, "per-HTTP-request deadline")
		drainGrace   = fs.Duration("drain-grace", 15*time.Second, "how long a drain lets the running sweep finish before canceling")
		retryAfter   = fs.Duration("retry-after", 2*time.Second, "Retry-After hint sent with 429/503")
		memoDir      = fs.String("memo-dir", "", "content-addressed result-cache directory (empty = caching off)")
		memoMem      = fs.Int64("memo-mem", 0, "in-memory result-cache budget in bytes (0 = 64 MiB; effective with -memo-dir)")
		fsckFlag     = fs.Bool("fsck", false, "integrity-check the -state directory and exit (do not serve)")
	)
	obsFlags := obs.RegisterCLIFlags(fs)
	if err := fs.Parse(args); err != nil {
		return runx.ExitUsage
	}
	if done, err := obsFlags.Handle("deesim-coord", stdout, stderr); done {
		return runx.ExitOK
	} else if err != nil {
		fmt.Fprintln(stderr, "deesim-coord:", err)
		return runx.ExitCode(err)
	}
	logger := log.New(stderr, "", log.LstdFlags|log.Lmicroseconds)
	fail := func(err error) int {
		logger.Printf("deesim-coord: %v", err)
		code := runx.ExitCode(err)
		obsFlags.DumpFlightOnExit("deesim-coord", code)
		return code
	}
	defer func() {
		if err := obsFlags.WriteMetrics(); err != nil {
			logger.Printf("deesim-coord: %v", err)
		}
	}()
	stopFlush := obsFlags.FlushOnSignal(logger.Printf)
	defer stopFlush()

	slogger, err := obs.SetupLogger(stderr, obsFlags.LogLevel, obsFlags.LogJSON)
	if err != nil {
		return fail(err)
	}

	if *fsckFlag {
		r, err := fsck.Dir(nil, *stateFlag)
		if err != nil {
			return fail(err)
		}
		r.Render(stdout)
		if err := r.Err(); err != nil {
			return fail(err)
		}
		return runx.ExitOK
	}

	// Flight recorder and span fragments, exactly as on deesimd: the
	// black box defaults into -state and survives SIGKILL via the
	// periodic snapshot; the fragment log holds the coordinator's half
	// of every sweep trace (root, lease-dispatch, and merge spans).
	obsFlags.DefaultFlightOut(filepath.Join(*stateFlag, "flight.json"))
	defer obsFlags.DumpFlightOnPanic("deesim-coord")
	stopQuit := obsFlags.WatchQuit("deesim-coord", logger.Printf)
	defer stopQuit()
	frCtx, frStop := context.WithCancel(context.Background())
	defer frStop()
	go obs.Flight.Persist(frCtx, obsFlags.FlightOut, "deesim-coord", 0)

	frags, err := obs.OpenFragmentLog(filepath.Join(*stateFlag, "fragments.jsonl"), "deesim-coord")
	if err != nil {
		return fail(runx.Newf(runx.KindUnknown, "deesim-coord", "open fragment log: %v", err))
	}
	defer frags.Close()

	var bud *budget.Budget
	if *retryBudget > 0 {
		bud = budget.New(*retryBudget, *budgetRefill)
	}
	var mm *memo.Memo
	if *memoDir != "" {
		if mm, err = memo.New(memo.Config{Dir: *memoDir, MemBytes: *memoMem}); err != nil {
			return fail(err)
		}
	}
	c, err := coord.New(coord.Config{
		StateDir:         *stateFlag,
		Budget:           bud,
		Memo:             mm,
		QueueDepth:       *queueFlag,
		LeaseTTL:         *leaseTTL,
		HeartbeatTimeout: *hbTimeout,
		CellRetries:      *cellRetries,
		Backoff:          *backoffFlag,
		StragglerFactor:  *stragglerF,
		CellTimeout:      *cellTimeout,
		RequestTimeout:   *reqTimeout,
		DrainGrace:       *drainGrace,
		RetryAfter:       *retryAfter,
		Logf:             logger.Printf,
		Logger:           slogger,
		Frags:            frags,
	})
	if err != nil {
		return fail(err)
	}

	ln, err := net.Listen("tcp", *addrFlag)
	if err != nil {
		return fail(runx.Newf(runx.KindUnavailable, "deesim-coord", "listen %s: %v", *addrFlag, err))
	}
	if *addrFileFlag != "" {
		if err := superv.WriteFileAtomic(*addrFileFlag, []byte(ln.Addr().String()+"\n")); err != nil {
			ln.Close()
			return fail(err)
		}
	}

	c.Start()
	httpSrv := &http.Server{Handler: c.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logger.Printf("deesim-coord: serving on http://%s (state %s, lease-ttl %s, heartbeat-timeout %s)",
		ln.Addr(), *stateFlag, *leaseTTL, *hbTimeout)
	fmt.Fprintln(stdout, ln.Addr().String())

	ctx, stop := runx.MainContext(0)
	select {
	case <-ctx.Done():
		stop()
		logger.Printf("deesim-coord: signal received, draining")
		if err := c.Drain(context.Background()); err != nil {
			return fail(err)
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logger.Printf("deesim-coord: http shutdown: %v", err)
		}
		logger.Printf("deesim-coord: drained, exiting")
		return runx.ExitOK
	case err := <-serveErr:
		stop()
		c.Close()
		return fail(runx.Newf(runx.KindUnavailable, "deesim-coord", "serve: %v", err))
	}
}
