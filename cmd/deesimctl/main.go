// Command deesimctl is the deesimd client: it submits sweep specs,
// polls job status, and fetches results, retrying retryable failures
// (load shedding, daemon restarts, deadlines) with capped seeded-jitter
// backoff behind a circuit breaker.
//
// Usage:
//
//	deesimctl [-server http://127.0.0.1:8425] [-retries N] [-backoff d]
//	          [-retry-budget N] [-priority class] [-deadline d]
//	          [-timeout d] <command> [args]
//
// Commands:
//
//	submit <spec.json|->   submit a sweep spec (JSON file, or - for stdin);
//	                       prints the accepted job id (with the global
//	                       -wait flag: waits and prints the result instead)
//	status <id>            print one job's status JSON
//	list                   print every job's status JSON
//	result <id>            print a completed job's result tables (JSON)
//	wait <id>              poll until the job completes, then print status
//	health                 probe /healthz and /readyz; exit non-zero if not ready
//	fleet                  print a coordinator's worker registry (point
//	                       -server at deesim-coord)
//	submit-distributed <spec.json|->  submit a sweep to a deesim-coord
//	                       coordinator for fleet execution; identical
//	                       wire shape to submit, spelled separately so
//	                       scripts say what they mean
//	fsck <state-dir>       offline integrity check of a daemon state
//	                       directory (no server needed): verifies every
//	                       artifact's digest, replays journals, lists
//	                       quarantined and stale files; any corrupt or
//	                       quarantined artifact exits with the
//	                       corrupt-kind code
//	memo stats <memo-dir>  print a result-cache store's contents (entry
//	                       count, bytes, quarantined artifacts) as JSON;
//	                       offline, like fsck
//	memo purge <memo-dir>  remove every cache entry and sidecar from a
//	                       result-cache store (quarantined artifacts are
//	                       preserved — purge empties the cache, it never
//	                       destroys corruption evidence)
//	trace fetch <id>       fetch a sweep's merged fleet timeline from a
//	                       coordinator (-server at deesim-coord) as
//	                       Chrome-trace-event JSON on stdout — load it
//	                       in Perfetto (ui.perfetto.dev); validates that
//	                       every span has a nonnegative duration and
//	                       prints a span/lane summary to stderr
//
// Every submit mints a W3C traceparent and sends it with the spec; the
// trace id is echoed on stderr so the sweep's timeline can be fetched
// (trace fetch) or grepped out of fleet logs later.
//
// wait polls adaptively: a healthy daemon is polled at -poll, but
// consecutive failures back the cadence off exponentially — honoring
// any Retry-After the server sends — capped so recovery is still
// noticed promptly. A job that missed its absolute deadline exits with
// the deadline code (4) and names the deadline, so scripts can tell an
// SLO miss from a broken spec.
//
// SLO controls on submit: -priority stamps the spec's priority class
// ("interactive" or "batch"; batch is shed first under brownout), and
// -deadline converts a relative duration (e.g. 30s) to the absolute
// RFC3339 deadline the whole pipeline — server admission, coordinator
// leases, worker cells — enforces. -retry-budget caps the total number
// of retries one deesimctl invocation may issue across all its
// requests (0 = unlimited), so a flapping fleet cannot be hammered by
// its own clients.
//
// Exit codes follow the runx kind contract (internal/runx/cli.go): 0
// success, 2 usage, 10 shed by overload, 11 server unavailable, 4
// deadline, and so on — so scripts can distinguish "retry later" from
// "fix your spec".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"deesim/internal/budget"
	"deesim/internal/client"
	"deesim/internal/fsck"
	"deesim/internal/memo"
	"deesim/internal/obs"
	"deesim/internal/runx"
	"deesim/internal/server"
	"deesim/internal/superv"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func realMain(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("deesimctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		serverFlag  = fs.String("server", "http://127.0.0.1:8425", "deesimd base URL")
		retriesFlag = fs.Int("retries", 3, "retries per request after the first attempt")
		backoffFlag = fs.Duration("backoff", 250*time.Millisecond, "base retry backoff (exponential, seeded jitter; Retry-After raises it)")
		timeoutFlag = fs.Duration("timeout", 0, "wall-clock limit for the whole command (0 = none)")
		pollFlag    = fs.Duration("poll", 500*time.Millisecond, "status poll interval for wait")
		waitFlag    = fs.Bool("wait", false, "with submit: wait for completion and print the result")
		retryBudget = fs.Int("retry-budget", 0, "total retries this invocation may issue across all requests (0 = unlimited)")
		prioFlag    = fs.String("priority", "", `with submit: stamp the spec's priority class ("interactive" or "batch")`)
		deadlineRel = fs.Duration("deadline", 0, "with submit: absolute deadline this far from now (0 = none)")
	)
	obsFlags := obs.RegisterCLIFlags(fs)
	if err := fs.Parse(args); err != nil {
		return runx.ExitUsage
	}
	if done, err := obsFlags.Handle("deesimctl", stdout, stderr); done {
		return runx.ExitOK
	} else if err != nil {
		fmt.Fprintln(stderr, "deesimctl:", err)
		return runx.ExitCode(err)
	}
	defer func() {
		if err := obsFlags.WriteMetrics(); err != nil {
			fmt.Fprintln(stderr, "deesimctl:", err)
		}
	}()
	stopFlush := obsFlags.FlushOnSignal(func(format string, args ...any) {
		fmt.Fprintf(stderr, "deesimctl: "+format+"\n", args...)
	})
	defer stopFlush()
	defer obsFlags.DumpFlightOnPanic("deesimctl")
	stopQuit := obsFlags.WatchQuit("deesimctl", func(format string, args ...any) {
		fmt.Fprintf(stderr, "deesimctl: "+format+"\n", args...)
	})
	defer stopQuit()
	if fs.NArg() < 1 {
		fmt.Fprintln(stderr, "deesimctl: missing command (submit, submit-distributed, status, list, result, wait, health, fleet, fsck, memo, trace)")
		fs.Usage()
		return runx.ExitUsage
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "deesimctl:", err)
		code := runx.ExitCode(err)
		// Nonzero typed exits leave a flight-recorder dump when the user
		// asked for one (-flight-out); silently nothing otherwise.
		obsFlags.DumpFlightOnExit("deesimctl", code)
		return code
	}

	c := client.New(*serverFlag)
	c.Retry = superv.RetryPolicy{Attempts: *retriesFlag + 1, Backoff: *backoffFlag}
	c.Logf = func(format string, args ...any) { fmt.Fprintf(stderr, format+"\n", args...) }
	if *retryBudget > 0 {
		c.Budget = budget.New(*retryBudget, 0)
	}

	ctx, stop := runx.MainContext(*timeoutFlag)
	defer stop()

	emit := func(v any) error {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}
	needArg := func(what string) (string, error) {
		if fs.NArg() < 2 {
			return "", runx.Newf(runx.KindInvalidInput, "deesimctl", "usage: deesimctl %s <%s>", fs.Arg(0), what)
		}
		return fs.Arg(1), nil
	}

	switch cmd := fs.Arg(0); cmd {
	case "submit", "submit-distributed":
		path, err := needArg("spec.json")
		if err != nil {
			return fail(err)
		}
		var data []byte
		if path == "-" {
			data, err = io.ReadAll(stdin)
		} else {
			data, err = os.ReadFile(path)
		}
		if err != nil {
			return fail(runx.Newf(runx.KindInvalidInput, "deesimctl", "read spec: %v", err))
		}
		var sp server.Spec
		if err := json.Unmarshal(data, &sp); err != nil {
			return fail(runx.Newf(runx.KindInvalidInput, "deesimctl", "parse spec %s: %v", path, err))
		}
		if *prioFlag != "" {
			sp.Priority = *prioFlag
		}
		if *deadlineRel > 0 {
			// The wire carries an absolute RFC3339 deadline so every hop
			// (server, coordinator, worker cells) enforces the same instant
			// regardless of queueing delay in between.
			sp.Deadline = time.Now().Add(*deadlineRel).UTC().Format(time.RFC3339)
		}
		// Mint the trace here, at the true root of the request: the
		// client injects it as a traceparent header, the daemon persists
		// it into the spec, and every hop downstream joins it.
		tc := obs.NewTrace()
		st, err := c.Submit(obs.WithTraceContext(ctx, tc), sp)
		if err != nil {
			return fail(err)
		}
		noun := "job"
		if cmd == "submit-distributed" {
			noun = "distributed sweep"
		}
		fmt.Fprintf(stderr, "deesimctl: %s %s accepted (%d cells, trace %s)\n", noun, st.ID, st.CellsTotal, tc.TraceID)
		if !*waitFlag {
			fmt.Fprintln(stdout, st.ID)
			return runx.ExitOK
		}
		if _, err := c.Wait(ctx, st.ID, *pollFlag); err != nil {
			return fail(err)
		}
		raw, err := c.Result(ctx, st.ID)
		if err != nil {
			return fail(err)
		}
		stdout.Write(append(raw, '\n'))
		return runx.ExitOK

	case "status":
		id, err := needArg("job-id")
		if err != nil {
			return fail(err)
		}
		st, err := c.Status(ctx, id)
		if err != nil {
			return fail(err)
		}
		emit(st)
		return runx.ExitOK

	case "list":
		sts, err := c.List(ctx)
		if err != nil {
			return fail(err)
		}
		emit(sts)
		return runx.ExitOK

	case "result":
		id, err := needArg("job-id")
		if err != nil {
			return fail(err)
		}
		raw, err := c.Result(ctx, id)
		if err != nil {
			return fail(err)
		}
		stdout.Write(append(raw, '\n'))
		return runx.ExitOK

	case "wait":
		id, err := needArg("job-id")
		if err != nil {
			return fail(err)
		}
		st, err := c.Wait(ctx, id, *pollFlag)
		if err != nil {
			return fail(err)
		}
		emit(st)
		return runx.ExitOK

	case "fleet":
		raw, err := c.Fleet(ctx)
		if err != nil {
			return fail(err)
		}
		stdout.Write(append(raw, '\n'))
		return runx.ExitOK

	case "fsck":
		// Offline: walks the state directory directly, no daemon involved
		// (run it against a stopped daemon's -state dir).
		dir, err := needArg("state-dir")
		if err != nil {
			return fail(err)
		}
		r, err := fsck.Dir(nil, dir)
		if err != nil {
			return fail(err)
		}
		r.Render(stdout)
		if err := r.Err(); err != nil {
			return fail(err)
		}
		return runx.ExitOK

	case "memo":
		// Offline like fsck: operates on the store directory directly,
		// so it works against a stopped daemon's -memo-dir.
		if fs.NArg() < 3 {
			return fail(runx.Newf(runx.KindInvalidInput, "deesimctl", "usage: deesimctl memo stats|purge <memo-dir>"))
		}
		sub, dir := fs.Arg(1), fs.Arg(2)
		switch sub {
		case "stats":
			st, err := memo.DirStats(nil, dir)
			if err != nil {
				return fail(err)
			}
			emit(st)
			return runx.ExitOK
		case "purge":
			n, err := memo.PurgeDir(nil, dir)
			if err != nil {
				return fail(err)
			}
			fmt.Fprintf(stdout, "purged %d cache entries from %s\n", n, dir)
			return runx.ExitOK
		default:
			return fail(runx.Newf(runx.KindInvalidInput, "deesimctl", "unknown memo subcommand %q (stats, purge)", sub))
		}

	case "trace":
		if fs.NArg() < 3 || fs.Arg(1) != "fetch" {
			return fail(runx.Newf(runx.KindInvalidInput, "deesimctl", "usage: deesimctl trace fetch <sweep-id>"))
		}
		id := fs.Arg(2)
		raw, err := c.TraceFetch(ctx, id)
		if err != nil {
			return fail(err)
		}
		summary, err := checkTimeline(raw)
		if err != nil {
			return fail(runx.Newf(runx.KindCorrupt, "deesimctl", "trace %s: %v", id, err))
		}
		fmt.Fprintf(stderr, "deesimctl: trace %s: %s\n", id, summary)
		stdout.Write(append(raw, '\n'))
		return runx.ExitOK

	case "health":
		if err := c.Healthy(ctx); err != nil {
			return fail(err)
		}
		if err := c.Ready(ctx); err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, "ok")
		return runx.ExitOK

	default:
		fmt.Fprintf(stderr, "deesimctl: unknown command %q\n", cmd)
		return runx.ExitUsage
	}
}

// checkTimeline validates a fetched Chrome-trace document before
// re-emitting it: every complete ("X") span must have a nonnegative
// duration, and event timestamps within each lane must be monotone
// nondecreasing — the merge sorts them, so a violation means a torn or
// mis-merged fetch, not clock skew. Returns a one-line summary for the
// stderr narration (and for CI to assert against).
func checkTimeline(raw []byte) (string, error) {
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return "", fmt.Errorf("parse timeline: %v", err)
	}
	lastTS := map[int]float64{}
	lanes := map[int]bool{}
	spans, cells := 0, 0
	for _, ev := range doc.TraceEvents {
		lanes[ev.PID] = true
		if ev.Ph == "M" { // metadata (lane names) carries no timestamp
			continue
		}
		if ev.TS < 0 {
			return "", fmt.Errorf("span %q: negative timestamp %v", ev.Name, ev.TS)
		}
		if last, ok := lastTS[ev.PID]; ok && ev.TS < last {
			return "", fmt.Errorf("span %q: timestamp %v precedes %v in lane %d", ev.Name, ev.TS, last, ev.PID)
		}
		lastTS[ev.PID] = ev.TS
		if ev.Ph == "X" {
			if ev.Dur < 0 {
				return "", fmt.Errorf("span %q: negative duration %v", ev.Name, ev.Dur)
			}
			spans++
			if strings.HasPrefix(ev.Name, "cell ") {
				cells++
			}
		}
	}
	if spans == 0 {
		return "", fmt.Errorf("timeline has no complete spans")
	}
	return fmt.Sprintf("%d spans (%d cell) across %d lanes, timestamps monotone", spans, cells, len(lanes)), nil
}
