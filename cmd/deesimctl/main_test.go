package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deesim/internal/durable"
	"deesim/internal/faultinject"
	"deesim/internal/memo"
	"deesim/internal/runx"
	"deesim/internal/server"
)

// smokeSpec is a sub-second 4-cell sweep: one workload, two models,
// two resource levels, tight instruction cap.
const smokeSpec = `{"workloads":["xlisp"],"models":["SP","DEE-CD-MF"],"resources":[8,64],"max":3000}`

func TestCtlEndToEnd(t *testing.T) {
	s, err := server.New(server.Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	s.Start()
	defer s.Close()
	h := httptest.NewServer(s.Handler())
	defer h.Close()

	specPath := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(specPath, []byte(smokeSpec), 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(args ...string) (int, string, string) {
		var out, errb bytes.Buffer
		code := realMain(append([]string{"-server", h.URL, "-poll", "20ms"}, args...),
			strings.NewReader(""), &out, &errb)
		return code, out.String(), errb.String()
	}

	code, out, errb := run("submit", specPath)
	if code != runx.ExitOK {
		t.Fatalf("submit exited %d: %s", code, errb)
	}
	id := strings.TrimSpace(out)
	if id != "j000001" {
		t.Fatalf("submit printed %q, want the job id j000001", out)
	}

	code, out, errb = run("wait", id)
	if code != runx.ExitOK {
		t.Fatalf("wait exited %d: %s", code, errb)
	}
	var st server.JobStatus
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatalf("wait output unparsable: %v\n%s", err, out)
	}
	if st.State != server.StateDone || st.CellsDone != 4 {
		t.Fatalf("wait status = %+v, want done 4/4", st)
	}

	code, out, errb = run("result", id)
	if code != runx.ExitOK {
		t.Fatalf("result exited %d: %s", code, errb)
	}
	var tables []json.RawMessage
	if err := json.Unmarshal([]byte(out), &tables); err != nil {
		t.Fatalf("result output unparsable: %v", err)
	}
	if len(tables) == 0 {
		t.Fatal("result printed an empty table set")
	}

	code, out, errb = run("list")
	if code != runx.ExitOK || !strings.Contains(out, id) {
		t.Fatalf("list exited %d without job %s: %s%s", code, id, out, errb)
	}

	if code, _, errb = run("health"); code != runx.ExitOK {
		t.Fatalf("health exited %d: %s", code, errb)
	}
}

func TestCtlSubmitWaitFromStdin(t *testing.T) {
	s, err := server.New(server.Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	s.Start()
	defer s.Close()
	h := httptest.NewServer(s.Handler())
	defer h.Close()

	var out, errb bytes.Buffer
	code := realMain([]string{"-server", h.URL, "-poll", "20ms", "-wait", "submit", "-"},
		strings.NewReader(smokeSpec), &out, &errb)
	if code != runx.ExitOK {
		t.Fatalf("submit -wait exited %d: %s", code, errb.String())
	}
	var tables []json.RawMessage
	if err := json.Unmarshal(out.Bytes(), &tables); err != nil {
		t.Fatalf("submit -wait did not print result JSON: %v\n%s", err, out.String())
	}
}

// TestCtlFsck: the offline integrity check exits 0 on a clean state
// directory and with the corrupt-kind code once an artifact stops
// matching its digest — and again while damage sits in quarantine.
func TestCtlFsck(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "result.json")
	if err := durable.WriteFileAtomic(nil, path, []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	run := func() (int, string) {
		var out, errb bytes.Buffer
		code := realMain([]string{"fsck", dir}, strings.NewReader(""), &out, &errb)
		return code, out.String() + errb.String()
	}
	if code, all := run(); code != runx.ExitOK {
		t.Fatalf("clean fsck exited %d: %s", code, all)
	}
	ffs := faultinject.NewFaultyFS(nil, 31)
	if _, err := ffs.RotFile(path); err != nil {
		t.Fatal(err)
	}
	code, all := run()
	if code != runx.ExitCorrupt {
		t.Fatalf("corrupt fsck exited %d, want %d: %s", code, runx.ExitCorrupt, all)
	}
	if !strings.Contains(all, "corrupt") {
		t.Errorf("corrupt fsck output missing verdict: %s", all)
	}
	// The daemon's remediation is quarantine; fsck must keep flagging it.
	if _, err := durable.Quarantine(nil, path); err != nil {
		t.Fatal(err)
	}
	if code, all := run(); code != runx.ExitCorrupt || !strings.Contains(all, "quarantined") {
		t.Fatalf("quarantined fsck exited %d: %s", code, all)
	}
}

func TestCtlExitCodes(t *testing.T) {
	s, err := server.New(server.Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	s.Start()
	defer s.Close()
	h := httptest.NewServer(s.Handler())
	defer h.Close()

	run := func(args ...string) int {
		var out, errb bytes.Buffer
		return realMain(append([]string{"-server", h.URL, "-retries", "0"}, args...),
			strings.NewReader(""), &out, &errb)
	}

	if code := run(); code != runx.ExitUsage {
		t.Fatalf("no command exited %d, want %d", code, runx.ExitUsage)
	}
	if code := run("bogus"); code != runx.ExitUsage {
		t.Fatalf("unknown command exited %d, want %d", code, runx.ExitUsage)
	}
	if code := run("status"); code != runx.ExitInvalidInput {
		t.Fatalf("status with no id exited %d, want %d", code, runx.ExitInvalidInput)
	}
	if code := run("status", "j999999"); code != runx.ExitInvalidInput {
		t.Fatalf("unknown job exited %d, want %d", code, runx.ExitInvalidInput)
	}
	// A result that is not ready yet is a retryable unavailability, not
	// an input error: scripts get exit 11 and should come back later.
	st, err := s.Submit(server.Spec{Workloads: []string{"xlisp"}, Models: []string{"SP"}, Resources: []int{8}, MaxInstrs: 3000, CellDelay: "2s"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if code := run("result", st.ID); code != runx.ExitUnavailable {
		t.Fatalf("early result exited %d, want %d", code, runx.ExitUnavailable)
	}
}

func TestCtlMemoStatsAndPurge(t *testing.T) {
	dir := t.TempDir()
	m, err := memo.New(memo.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put("cell|a", []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := m.Put("cell|b", []byte("bb")); err != nil {
		t.Fatal(err)
	}

	run := func(args ...string) (int, string, string) {
		var out, errb bytes.Buffer
		code := realMain(args, strings.NewReader(""), &out, &errb)
		return code, out.String(), errb.String()
	}

	code, out, errb := run("memo", "stats", dir)
	if code != runx.ExitOK {
		t.Fatalf("memo stats exited %d: %s", code, errb)
	}
	var st memo.Stats
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatalf("memo stats output not JSON: %v\n%s", err, out)
	}
	if st.Entries != 2 || st.Bytes != 6 {
		t.Fatalf("memo stats = %+v; want 2 entries, 6 bytes", st)
	}

	code, out, errb = run("memo", "purge", dir)
	if code != runx.ExitOK {
		t.Fatalf("memo purge exited %d: %s", code, errb)
	}
	if !strings.Contains(out, "purged 2 cache entries") {
		t.Fatalf("purge output %q missing count", out)
	}
	if code, out, _ = run("memo", "stats", dir); code != runx.ExitOK {
		t.Fatal("stats after purge failed")
	}
	if err := json.Unmarshal([]byte(out), &st); err != nil || st.Entries != 0 {
		t.Fatalf("post-purge stats = %+v, %v; want empty", st, err)
	}

	// Usage errors: missing args and unknown subcommand are invalid input.
	if code, _, _ := run("memo"); code != runx.ExitInvalidInput {
		t.Fatalf("bare memo exited %d, want %d", code, runx.ExitInvalidInput)
	}
	if code, _, _ := run("memo", "defrag", dir); code != runx.ExitInvalidInput {
		t.Fatalf("unknown subcommand exited %d, want %d", code, runx.ExitInvalidInput)
	}
	if code, _, _ := run("memo", "stats", filepath.Join(dir, "missing")); code != runx.ExitInvalidInput {
		t.Fatalf("missing dir exited %d, want %d", code, runx.ExitInvalidInput)
	}
}
