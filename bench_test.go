// Benchmark harness regenerating the paper's evaluation. Each benchmark
// corresponds to a figure, table, or in-text number; the regenerated
// quantity is attached as a custom metric:
//
//	BenchmarkFigure1Trees          Figure 1 tree construction (p=0.7, ET=6)
//	BenchmarkFigure2StaticTree     Figure 2 static tree (p=0.9, ET=34)
//	BenchmarkTreeGeometry          §3.1 closed-form sweep
//	BenchmarkFig5                  Figure 5 panels: speedup/* metrics per
//	                               workload × model × resources
//	BenchmarkOracle                per-panel Oracle speedups
//	BenchmarkET100                 §5.3: DEE-CD-MF vs SP vs EE at ET=100
//	BenchmarkDEE8vsEE256           §5.3: DEE-CD-MF@8 ≈ EE@256
//	BenchmarkRootResolution        §5.3: mispredicts resolving at tree root
//	BenchmarkLevo                  §4: Levo IPC per workload
//	Benchmark<subsystem>           substrate micro-benchmarks
//
// Traces are capped (BenchTraceCap) so the full suite runs in minutes;
// cmd/deesim regenerates the figures at full length.
package deesim_test

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"deesim/internal/asm"
	"deesim/internal/bench"
	"deesim/internal/cache"
	"deesim/internal/cfg"
	"deesim/internal/cpu"
	"deesim/internal/dee"
	"deesim/internal/ilpsim"
	"deesim/internal/isa"
	"deesim/internal/levo"
	"deesim/internal/perf"
	"deesim/internal/predictor"
	"deesim/internal/trace"
	"deesim/internal/unroll"
)

// BenchTraceCap bounds the dynamic instruction stream per workload in
// the benchmark harness.
const BenchTraceCap = 60_000

var (
	simMu    sync.Mutex
	simCache = map[string]*ilpsim.Sim{}
	trCache  = map[string]*trace.Trace{}
)

// benchTrace returns the capped trace for one workload, recorded on
// first use. Construction is lazy and per-workload: a benchmark that
// touches only compress no longer pays for tracing and preparing the
// other four workloads (the old sims() built all five up front under a
// single sync.Once).
func benchTrace(b *testing.B, name string) *trace.Trace {
	b.Helper()
	simMu.Lock()
	defer simMu.Unlock()
	if tr, ok := trCache[name]; ok {
		return tr
	}
	w, err := bench.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := w.Inputs[0].Build(1)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Record(prog, BenchTraceCap)
	if err != nil {
		b.Fatal(err)
	}
	trCache[name] = tr
	return tr
}

// sim returns the prepared simulator for one workload, built lazily on
// first use and shared (a Sim is safe for concurrent runs).
func sim(b *testing.B, name string) *ilpsim.Sim {
	b.Helper()
	tr := benchTrace(b, name)
	simMu.Lock()
	defer simMu.Unlock()
	if s, ok := simCache[name]; ok {
		return s
	}
	s := ilpsim.MustNew(tr, predictor.NewTwoBit(), ilpsim.DefaultOptions())
	simCache[name] = s
	return s
}

// TestMain hooks the perf pipeline into the go-test harness: when
// BENCH_CORE_OUT names a file, a successful run additionally measures
// the ILP core (event scheduler vs the legacy scanner, same cells as
// `deesim -bench-out`) at the harness trace cap and writes the
// benchstat-compatible suite there.
func TestMain(m *testing.M) {
	code := m.Run()
	if out := os.Getenv("BENCH_CORE_OUT"); out != "" && code == 0 {
		suite, err := perf.RunCore(context.Background(), perf.CoreConfig{TraceCap: BenchTraceCap})
		if err != nil {
			fmt.Fprintln(os.Stderr, "BENCH_CORE_OUT:", err)
			os.Exit(1)
		}
		suite.Benchstat(os.Stderr)
		if err := suite.WriteFile(out); err != nil {
			fmt.Fprintln(os.Stderr, "BENCH_CORE_OUT:", err)
			os.Exit(1)
		}
	}
	os.Exit(code)
}

// --- Figure 1 & 2: analytic trees ---

func BenchmarkFigure1Trees(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		sp := dee.BuildSP(0.7, 6)
		ee := dee.BuildEE(0.7, 6)
		d := dee.BuildGreedy(0.7, 6)
		total = sp.TotalCP() + ee.TotalCP() + d.TotalCP()
	}
	b.ReportMetric(total, "sumPtot")
}

func BenchmarkFigure2StaticTree(b *testing.B) {
	var l, h int
	for i := 0; i < b.N; i++ {
		l, h = dee.StaticShape(0.90, 34)
		_ = dee.BuildStatic(0.90, 34)
	}
	b.ReportMetric(float64(l), "mainline_l")
	b.ReportMetric(float64(h), "hDEE")
}

func BenchmarkTreeGeometry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range []float64{0.8, 0.85, 0.9, 0.9053, 0.95} {
			for et := 8; et <= 256; et *= 2 {
				dee.StaticShape(p, et)
			}
		}
	}
}

// --- Figure 5: the main result ---

func BenchmarkFig5(b *testing.B) {
	for _, w := range bench.All() {
		s := sim(b, w.Name)
		for _, m := range ilpsim.PaperModels {
			for _, et := range []int{8, 64, 256} {
				name := fmt.Sprintf("%s/%s/ET%d", w.Name, m, et)
				b.Run(name, func(b *testing.B) {
					var r ilpsim.Result
					var err error
					for i := 0; i < b.N; i++ {
						r, err = s.Run(m, et)
						if err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(r.Speedup, "speedup")
				})
			}
		}
	}
}

func BenchmarkOracle(b *testing.B) {
	for _, w := range bench.All() {
		s := sim(b, w.Name)
		b.Run(w.Name, func(b *testing.B) {
			var r ilpsim.Result
			for i := 0; i < b.N; i++ {
				r = s.Oracle()
			}
			b.ReportMetric(r.Speedup, "oracle_speedup")
		})
	}
}

// BenchmarkET100 regenerates the §5.3 headline comparison: at the Levo
// target of ET = 100 branch paths, DEE-CD-MF versus plain branch
// prediction (paper: ×5.8) and versus eager execution (paper: ×4.0).
func BenchmarkET100(b *testing.B) {
	for _, w := range bench.All() {
		s := sim(b, w.Name)
		b.Run(w.Name, func(b *testing.B) {
			var deeS, spS, eeS float64
			for i := 0; i < b.N; i++ {
				rd, err := s.Run(ilpsim.ModelDEECDMF, 100)
				if err != nil {
					b.Fatal(err)
				}
				rs, err := s.Run(ilpsim.ModelSP, 100)
				if err != nil {
					b.Fatal(err)
				}
				re, err := s.Run(ilpsim.ModelEE, 100)
				if err != nil {
					b.Fatal(err)
				}
				deeS, spS, eeS = rd.Speedup, rs.Speedup, re.Speedup
			}
			b.ReportMetric(deeS, "DEE-CD-MF")
			b.ReportMetric(deeS/spS, "vs_SP")
			b.ReportMetric(deeS/eeS, "vs_EE")
			b.ReportMetric(deeS/s.Oracle().Speedup, "of_oracle")
		})
	}
}

// BenchmarkDEE8vsEE256 regenerates §5.3's "DEE-CD-MF with 8 branch path
// resources has the same performance as EE with 256".
func BenchmarkDEE8vsEE256(b *testing.B) {
	for _, w := range bench.All() {
		s := sim(b, w.Name)
		b.Run(w.Name, func(b *testing.B) {
			var d8, e256 float64
			for i := 0; i < b.N; i++ {
				rd, err := s.Run(ilpsim.ModelDEECDMF, 8)
				if err != nil {
					b.Fatal(err)
				}
				re, err := s.Run(ilpsim.ModelEE, 256)
				if err != nil {
					b.Fatal(err)
				}
				d8, e256 = rd.Speedup, re.Speedup
			}
			b.ReportMetric(d8, "DEE-CD-MF_8")
			b.ReportMetric(e256, "EE_256")
			b.ReportMetric(d8/e256, "ratio")
		})
	}
}

// BenchmarkRootResolution regenerates the §5.3 statistic that 70–80% of
// mispredict resolutions occur at the root of the tree.
func BenchmarkRootResolution(b *testing.B) {
	for _, w := range bench.All() {
		s := sim(b, w.Name)
		b.Run(w.Name, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				r, err := s.Run(ilpsim.ModelDEECDMF, 100)
				if err != nil {
					b.Fatal(err)
				}
				rate = r.RootResolutionRate()
			}
			b.ReportMetric(100*rate, "root_pct")
		})
	}
}

// --- §4: Levo ---

func BenchmarkLevo(b *testing.B) {
	for _, w := range bench.All() {
		prog, err := w.Inputs[0].Build(1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(w.Name, func(b *testing.B) {
			cfg := levo.DefaultConfig()
			cfg.MaxInstrs = BenchTraceCap
			var r levo.Result
			for i := 0; i < b.N; i++ {
				m, err := levo.New(prog, cfg)
				if err != nil {
					b.Fatal(err)
				}
				r, err = m.Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.IPC, "IPC")
			b.ReportMetric(float64(r.ValueMismatches), "mismatches")
		})
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkAssembler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.BuildCompress(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFunctionalSim(b *testing.B) {
	prog, err := bench.BuildCompress(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		c := cpu.New(prog)
		if err := c.Run(0); err != nil {
			b.Fatal(err)
		}
		insts = c.Steps()
	}
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

func BenchmarkTraceRecord(b *testing.B) {
	prog, err := bench.BuildCompress(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Record(prog, BenchTraceCap); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDataDeps(b *testing.B) {
	tr := benchTrace(b, "compress")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.DataDeps(false)
	}
}

func BenchmarkPredictor2Bit(b *testing.B) {
	tr := benchTrace(b, "compress")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		predictor.Accuracy(tr, predictor.NewTwoBit())
	}
}

func BenchmarkPredictorPAp(b *testing.B) {
	tr := benchTrace(b, "compress")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		predictor.Accuracy(tr, predictor.NewPAp(4))
	}
}

func BenchmarkPostdominators(b *testing.B) {
	prog, err := bench.BuildCC1(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Build(prog)
	}
}

func BenchmarkGreedyTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dee.BuildGreedy(0.9053, 1000)
	}
}

func BenchmarkAssembleMicro(b *testing.B) {
	src := `
    li  $t0, 100
loop:
    addi $t0, $t0, -1
    bgtz $t0, loop
    halt
`
	for i := 0; i < b.N; i++ {
		if _, err := asm.Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}

// --- extension benchmarks ---

// BenchmarkTreeConstructionAblation reports the §3 tree-construction
// comparison: static heuristic vs Theorem-1 greedy vs the dynamic
// per-branch "theoretically perfect" DEE.
func BenchmarkTreeConstructionAblation(b *testing.B) {
	s := sim(b, "cc1")
	models := []struct {
		name string
		m    ilpsim.Model
	}{
		{"static", ilpsim.ModelDEECDMF},
		{"greedy", ilpsim.Model{Strategy: dee.DEEPure, CDMode: ilpsim.CDMF}},
		{"profile", ilpsim.Model{Strategy: dee.DEEProfile, CDMode: ilpsim.CDMF}},
	}
	for _, mm := range models {
		b.Run(mm.name, func(b *testing.B) {
			var r ilpsim.Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = s.Run(mm.m, 128)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.Speedup, "speedup")
		})
	}
}

// BenchmarkUnrollFilter measures the §4.2 loop-unrolling filter itself
// and reports its effect on Levo pass counts for compress.
func BenchmarkUnrollFilter(b *testing.B) {
	prog, err := bench.BuildCompress(1)
	if err != nil {
		b.Fatal(err)
	}
	var rep unroll.Report
	var q *isa.Program
	for i := 0; i < b.N; i++ {
		q, rep, err = unroll.Apply(prog, unroll.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.LoopsUnrolled), "loops")
	b.ReportMetric(float64(rep.SizeAfter-rep.SizeBefore), "added_insts")
	_ = q
}

// BenchmarkCacheAccess measures the data-cache substrate.
func BenchmarkCacheAccess(b *testing.B) {
	c := cache.MustNew(cache.Default16K())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint32(i*64) & 0xFFFFF)
	}
	_, _, rate := c.Stats()
	b.ReportMetric(rate, "missRate")
}

// BenchmarkLevoUnrolled reports the Levo pass-count effect of the
// unrolling filter (§4.2: capture more work per IQ pass).
func BenchmarkLevoUnrolled(b *testing.B) {
	prog, err := bench.BuildCompress(1)
	if err != nil {
		b.Fatal(err)
	}
	q, _, err := unroll.Apply(prog, unroll.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	cfg := levo.DefaultConfig()
	cfg.MaxInstrs = BenchTraceCap
	var plain, unrolled levo.Result
	for i := 0; i < b.N; i++ {
		m1, err := levo.New(prog, cfg)
		if err != nil {
			b.Fatal(err)
		}
		plain, err = m1.Run()
		if err != nil {
			b.Fatal(err)
		}
		m2, err := levo.New(q, cfg)
		if err != nil {
			b.Fatal(err)
		}
		unrolled, err = m2.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(plain.Passes), "passes_plain")
	b.ReportMetric(float64(unrolled.Passes), "passes_unrolled")
	b.ReportMetric(unrolled.IPC, "IPC_unrolled")
}
