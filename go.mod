module deesim

go 1.22
