// Package deesim is a from-scratch reproduction of
//
//	Augustus K. Uht and Vijay Sindagi,
//	"Disjoint Eager Execution: An Optimal Form of Speculative Execution",
//	Proceedings of the 28th International Symposium on Microarchitecture
//	(MICRO-28), IEEE/ACM, November/December 1995.
//
// The repository contains every system the paper's evaluation depends
// on, built on the Go standard library alone:
//
//   - internal/isa, internal/asm, internal/cpu — a MIPS-R3000-flavoured
//     ISA, its two-pass assembler, and the golden functional simulator;
//   - internal/bench — five workloads written in that assembly standing
//     in for the paper's SPECint92 benchmarks, validated against Go
//     reference implementations;
//   - internal/trace, internal/predictor, internal/cfg — dynamic traces
//     with minimal (flow-only) data dependencies, the paper's 2-bit and
//     PAp branch predictors, and postdominator/control-dependence
//     analysis;
//   - internal/dee — the paper's core contribution: cumulative
//     probability theory (Theorem 1), greedy optimal speculation trees,
//     and the §3.1 static-tree heuristic with its closed-form geometry;
//   - internal/ilpsim — the constrained-resource ILP limit simulator
//     reproducing Figure 5's eight models;
//   - internal/levo — a behavioral, value-validated model of the Levo
//     microarchitecture of §4 (static instruction window, RE/VE
//     predication, per-row predictors, DEE side paths);
//   - cmd/deesim, cmd/treeviz, cmd/tracegen, cmd/levosim — the tools
//     that regenerate every figure, table, and in-text statistic.
//
// The benchmark suite in bench_test.go regenerates the paper's
// experiments as testing.B benchmarks whose reported custom metrics
// (speedup, IPC, oracle factors) correspond to the figure series. See
// DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package deesim
