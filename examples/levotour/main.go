// Levo tour: watch the §4 machine model work — a captured loop executing
// in iteration columns, the same code through the §4.2 unrolling filter,
// linear-code mode on call-heavy code, and the §4.3 hardware budget.
//
//	go run ./examples/levotour
package main

import (
	"fmt"
	"log"

	"deesim/internal/asm"
	"deesim/internal/levo"
	"deesim/internal/unroll"
)

const capturedLoop = `
# Saxpy-like kernel: y[i] = 3*x[i] + y[i], 512 elements. The body is 10
# instructions — comfortably captured by a 32-row IQ.
    li   $t0, 0
    la   $t1, x
    la   $t2, y
loop:
    sll  $t3, $t0, 2
    add  $t4, $t1, $t3
    lw   $t5, 0($t4)
    mul  $t5, $t5, $t6
    add  $t7, $t2, $t3
    lw   $s0, 0($t7)
    add  $s0, $s0, $t5
    sw   $s0, 0($t7)
    addi $t0, $t0, 1
    li   $s1, 512
    blt  $t0, $s1, loop
    halt
.data
x: .space 2048
y: .space 2048
`

const callHeavy = `
# The same work through a function call per element: every call and
# return leaves the 32-row window, forcing linear-code mode.
    li   $s0, 0
loop:
    move $a0, $s0
    jal  work
    addi $s0, $s0, 1
    li   $s1, 256
    blt  $s0, $s1, loop
    halt
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
work:
    sll  $v0, $a0, 1
    add  $v0, $v0, $a0
    jr   $ra
`

func run(name, src string, cfg levo.Config, filter bool) {
	prog, err := asm.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	if filter {
		opt := unroll.DefaultOptions()
		opt.TargetSize = 3 * cfg.Rows / 4
		opt.WindowSize = cfg.Rows
		var rep unroll.Report
		prog, rep, err = unroll.Apply(prog, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  filter: %s\n", rep)
	}
	m, err := levo.New(prog, cfg)
	if err != nil {
		log.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-26s IPC %5.2f  passes %5d  relocations %5d  accuracy %4.1f%%  mismatches %d\n",
		name, r.IPC, r.Passes, r.Relocations, 100*r.Accuracy, r.ValueMismatches)
}

func main() {
	cfg := levo.DefaultConfig()
	fmt.Printf("Levo model, IQ %dx%d with %d DEE paths (the paper's ET=32 class)\n\n",
		cfg.Rows, cfg.Cols, cfg.DEEPaths)

	fmt.Println("1. A captured loop executes in iteration columns:")
	run("captured loop", capturedLoop, cfg, false)
	fmt.Println()

	fmt.Println("2. The §4.2 unrolling filter packs several iterations per pass:")
	run("captured loop, unrolled", capturedLoop, cfg, true)
	fmt.Println()

	fmt.Println("3. Call-heavy code runs in linear-code mode (window relocations):")
	run("call per element", callHeavy, cfg, false)
	fmt.Println()

	fmt.Println("4. The §4.3 hardware budget for this machine class:")
	fmt.Println(levo.EstimateCost(levo.PaperET32()))
}
