// Multiprocessor assignment: §2 of the paper notes that beyond
// hardware ILP machines, "for multiprocessors, DEE can be used to assign
// spare processors to intelligently speculatively execute code". This
// example simulates that setting with the core dee package directly:
//
//   - a parallel region forks at a chain of data-dependent branches
//     (think: speculative task spawning down a decision tree);
//   - K spare processors are assigned to candidate continuations under
//     three policies — SP (all processors down the predicted path), EE
//     (breadth-first over both sides), and DEE (greedy by cumulative
//     probability);
//   - a Monte-Carlo run of branch outcomes scores each policy by the
//     expected amount of *useful* speculative work (processor-assigned
//     paths that turn out to lie on the actual execution path).
//
// DEE's expected useful work equals its tree's total cumulative
// probability (Theorem 1), so the measurement also validates the theory
// numerically.
//
//	go run ./examples/multiprocessor
package main

import (
	"fmt"
	"math/rand"

	"deesim/internal/dee"
	"deesim/internal/stats"
)

func main() {
	const (
		processors = 14
		accuracy   = 0.72 // hard-to-predict region: speculation hedging pays
		trials     = 200_000
	)
	rng := rand.New(rand.NewSource(1995))

	policies := []struct {
		name string
		tree *dee.Tree
	}{
		{"SP   (chase the predicted path)", dee.BuildSP(accuracy, processors)},
		{"EE   (both sides, breadth-first)", dee.BuildEE(accuracy, processors)},
		{"DEE  (greedy by cumulative prob)", dee.BuildGreedy(accuracy, processors)},
	}

	fmt.Printf("Assigning %d spare processors to speculative continuations\n", processors)
	fmt.Printf("(per-branch prediction accuracy %.0f%%, %d Monte-Carlo trials)\n\n", 100*accuracy, trials)

	table := stats.NewTable("expected useful speculative work (paths on the actual outcome path)",
		"policy", []string{"measured", "theory (Ptot)", "95% of theory?"})
	for _, pol := range policies {
		useful := 0.0
		maxDepth := pol.tree.Height()
		for trial := 0; trial < trials; trial++ {
			// Draw actual branch outcomes: each branch goes the
			// predicted way with probability `accuracy`.
			turns := make([]byte, 0, maxDepth)
			for d := 0; d < maxDepth; d++ {
				if rng.Float64() < accuracy {
					turns = append(turns, byte(dee.Pred))
				} else {
					turns = append(turns, byte(dee.NotPred))
				}
			}
			// Count assigned paths that lie on the actual path prefix.
			for d := 1; d <= maxDepth; d++ {
				if pol.tree.Contains(dee.Node(turns[:d])) {
					useful++
				} else {
					break // deeper prefixes cannot be assigned either
				}
			}
		}
		measured := useful / trials
		theory := pol.tree.TotalCP()
		table.Set(pol.name, 0, measured)
		table.Set(pol.name, 1, theory)
		ok := 0.0
		if measured > 0.95*theory && measured < 1.05*theory {
			ok = 1
		}
		table.Set(pol.name, 2, ok)
	}
	table.SetFormat("%.3f")
	fmt.Println(table.Render())
	fmt.Println("DEE maximizes expected useful work at fixed processors (Theorem 1):")
	fmt.Println("it beats SP because deep predicted paths become unlikely, and EE")
	fmt.Println("because half of each eager level is spent on improbable outcomes.")
	fmt.Println()

	// Corollary 1: when a path saturates (here: each path can use at
	// most 3 processors productively), the greedy rule spills the rest
	// to the next most likely path.
	fmt.Println("With per-path saturation of 3 PEs (Corollary 1), the same", processors, "processors spread:")
	allocs := dee.AllocateSaturating(accuracy, processors, 3)
	for _, a := range allocs {
		fmt.Printf("  path %-5s cp=%.3f  gets %d PE(s)\n", string(a.Path), a.Path.CP(accuracy), a.Units)
	}
	fmt.Printf("expected useful work: %.3f PE-slots (vs %.3f unsaturated)\n",
		dee.ExpectedWork(accuracy, allocs), dee.BuildGreedy(accuracy, processors).TotalCP())
}
