// Predictor study: §3 of the paper argues there is a trade-off between
// predictor accuracy and the degree of DEE — the better the predictor,
// the longer the mainline and the smaller the DEE region the static
// formulas allocate; the worse the predictor, the more DEE pays off.
// This example measures that interaction on one workload: several
// predictors, each driving the static-tree design point AND the
// run-time correctness stream.
//
//	go run ./examples/predictorstudy
package main

import (
	"fmt"
	"log"

	"deesim/internal/bench"
	"deesim/internal/dee"
	"deesim/internal/ilpsim"
	"deesim/internal/predictor"
	"deesim/internal/stats"
	"deesim/internal/trace"
)

func main() {
	w, err := bench.ByName("xlisp")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := w.Inputs[0].Build(0)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.Record(prog, 250_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: xlisp stand-in, %d dynamic instructions\n\n", tr.Len())

	const et = 64
	names := []string{"taken", "2bit", "pap2", "pap4", "pap8"}
	table := stats.NewTable(
		fmt.Sprintf("predictor -> accuracy, static tree shape, and speedup at ET=%d", et),
		"predictor",
		[]string{"accuracy%", "mainline l", "DEE h", "SP", "DEE", "SP-CD-MF", "DEE-CD-MF"})
	for _, name := range names {
		p, err := predictor.New(name)
		if err != nil {
			log.Fatal(err)
		}
		sim := ilpsim.MustNew(tr, p, ilpsim.DefaultOptions())
		table.Set(name, 0, 100*sim.Accuracy())
		run := func(m ilpsim.Model) ilpsim.Result {
			r, err := sim.Run(m, et)
			if err != nil {
				log.Fatal(err)
			}
			return r
		}
		rDee := run(ilpsim.ModelDEE)
		table.Set(name, 1, float64(rDee.TreeML))
		table.Set(name, 2, float64(rDee.TreeH))
		table.Set(name, 3, run(ilpsim.ModelSP).Speedup)
		table.Set(name, 4, rDee.Speedup)
		table.Set(name, 5, run(ilpsim.ModelSPCDMF).Speedup)
		table.Set(name, 6, run(ilpsim.ModelDEECDMF).Speedup)
	}
	fmt.Println(table.Render())

	fmt.Println("Lower accuracy -> taller DEE region (more resources hedging the")
	fmt.Println("mainline) and a larger DEE-over-SP advantage; the paper: \"some use")
	fmt.Println("of DEE is likely to be beneficial, regardless of predictor accuracy.\"")
	fmt.Println()

	// The design-point view of the same trade-off, directly from §3.1.
	fmt.Println("Static tree shape across characteristic accuracy (ET=64):")
	for _, p := range []float64{0.70, 0.80, 0.90, 0.95, 0.97} {
		l, h := dee.StaticShape(p, 64)
		fmt.Printf("  p=%.2f -> l=%-3d h=%-2d\n", p, l, h)
	}
}
