// Quickstart: assemble a small program, simulate it under the paper's
// ILP models, and print the speedups — the 60-second tour of the
// library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"deesim/internal/asm"
	"deesim/internal/ilpsim"
	"deesim/internal/predictor"
	"deesim/internal/trace"
)

// A histogram kernel: data-dependent branches (the bucket test) plus a
// predictable loop — a miniature of the general-purpose codes the paper
// targets.
const src = `
    li   $s0, 0              # i
    li   $s1, 3000           # n
    la   $s2, table          # input bytes
    la   $s3, hist           # 4 buckets
loop:
    add  $t0, $s2, $s0
    lbu  $t1, 0($t0)         # v = table[i]
    andi $t2, $t1, 3         # bucket = v & 3
    sll  $t2, $t2, 2
    add  $t2, $s3, $t2
    lw   $t3, 0($t2)
    li   $t4, 128
    blt  $t1, $t4, small     # data-dependent: which increment
    addi $t3, $t3, 2
    b    store
small:
    addi $t3, $t3, 1
store:
    sw   $t3, 0($t2)
    addi $s0, $s0, 1
    blt  $s0, $s1, loop
    halt
.data
hist:  .word 0, 0, 0, 0
table: .space 4096
`

func main() {
	prog, err := asm.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	// Fill the input with a deterministic pseudo-random pattern, biased
	// so the data-dependent branch is right about 90% of the time —
	// the integer-code regime the paper evaluates.
	addr := prog.DataSymbols["table"] - prog.DataBase
	x := uint32(0x2545)
	for i := 0; i < 4096; i++ {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		b := byte(x) & 0x7f
		if x%10 == 0 {
			b |= 0x80 // the rare "large value" side
		}
		prog.Data[int(addr)+i] = b
	}

	// Record the dynamic trace on the functional simulator.
	tr, err := trace.Record(prog, 0)
	if err != nil {
		log.Fatal(err)
	}
	st := tr.ComputeStats()
	fmt.Printf("trace: %d dynamic instructions, %d branch paths (mean length %.1f)\n",
		st.DynInsts, tr.NumPaths(), st.MeanPathLen)

	// Simulate with the paper's 2-bit predictor.
	sim := ilpsim.MustNew(tr, predictor.NewTwoBit(), ilpsim.DefaultOptions())
	fmt.Printf("2-bit predictor accuracy: %.1f%%\n", 100*sim.Accuracy())
	fmt.Printf("oracle (unlimited, branch-free) speedup: %.1fx\n\n", sim.Oracle().Speedup)

	const et = 64
	fmt.Printf("speedups over sequential execution at ET=%d branch paths:\n", et)
	for _, m := range []ilpsim.Model{
		ilpsim.ModelSP, ilpsim.ModelEE, ilpsim.ModelDEE,
		ilpsim.ModelSPCDMF, ilpsim.ModelDEECDMF,
	} {
		r, err := sim.Run(m, et)
		if err != nil {
			log.Fatal(err)
		}
		extra := ""
		if r.TreeH > 0 {
			extra = fmt.Sprintf("  (static tree: mainline %d + DEE region height %d)", r.TreeML, r.TreeH)
		}
		fmt.Printf("  %-10s %6.2fx%s\n", m, r.Speedup, extra)
	}
}
