// Custom workload: bring your own kernel. This example writes a small
// string-search routine in the reproduction's assembly, validates it on
// the functional simulator, then sweeps the paper's ILP models over it —
// the workflow for evaluating DEE on code you care about.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"deesim/internal/asm"
	"deesim/internal/cpu"
	"deesim/internal/ilpsim"
	"deesim/internal/predictor"
	"deesim/internal/stats"
	"deesim/internal/trace"
)

// Naive substring search: the inner-loop mismatch branch is data
// dependent and moderately unpredictable — branch behaviour much like
// the paper's "unpredictable-branch-intensive" motivating codes.
const src = `
main:
    la   $s0, haystack
    la   $s1, needle
    li   $s2, 0              # match count
    li   $s3, 0              # i
    lw   $s4, haylen
    lw   $s5, nlen
    sub  $s6, $s4, $s5       # last start position
outer:
    bgt  $s3, $s6, done
    li   $t0, 0              # j
inner:
    bge  $t0, $s5, hit       # whole needle matched
    add  $t1, $s0, $s3
    add  $t1, $t1, $t0
    lbu  $t2, 0($t1)         # haystack[i+j]
    add  $t3, $s1, $t0
    lbu  $t4, 0($t3)         # needle[j]
    bne  $t2, $t4, miss
    addi $t0, $t0, 1
    b    inner
hit:
    addi $s2, $s2, 1
miss:
    addi $s3, $s3, 1
    b    outer
done:
    la   $t0, result
    sw   $s2, 0($t0)
    halt
.data
haylen: .word 0
nlen:   .word 0
result: .word 0
needle: .asciiz "abra"
.align 4
haystack: .space 8192
`

func main() {
	prog, err := asm.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	// Generate a haystack with embedded needles.
	hay := make([]byte, 0, 6000)
	x := uint32(0xabcd)
	for len(hay) < 5900 {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		if x%23 == 0 {
			hay = append(hay, "abra"...)
		} else {
			hay = append(hay, byte('a'+x%6))
		}
	}
	copy(prog.Data[prog.DataSymbols["haystack"]-prog.DataBase:], hay)
	poke := func(label string, v uint32) {
		off := prog.DataSymbols[label] - prog.DataBase
		prog.Data[off] = byte(v)
		prog.Data[off+1] = byte(v >> 8)
		prog.Data[off+2] = byte(v >> 16)
		prog.Data[off+3] = byte(v >> 24)
	}
	poke("haylen", uint32(len(hay)))
	poke("nlen", 4)

	// 1. Functional validation: count matches in Go and on the machine.
	want := 0
	for i := 0; i+4 <= len(hay); i++ {
		if string(hay[i:i+4]) == "abra" {
			want++
		}
	}
	c := cpu.New(prog)
	if err := c.Run(50_000_000); err != nil {
		log.Fatal(err)
	}
	got := c.Mem.LoadWord(prog.DataSymbols["result"])
	fmt.Printf("functional check: %d matches (reference %d) — %s\n\n",
		got, want, okStr(int(got) == want))

	// 2. ILP model sweep.
	tr, err := trace.Record(prog, 0)
	if err != nil {
		log.Fatal(err)
	}
	sim := ilpsim.MustNew(tr, predictor.NewTwoBit(), ilpsim.DefaultOptions())
	fmt.Printf("%d dynamic instructions, predictor accuracy %.1f%%, oracle %.1fx\n\n",
		tr.Len(), 100*sim.Accuracy(), sim.Oracle().Speedup)

	resources := []int{8, 16, 32, 64, 128, 256}
	cols := make([]string, len(resources))
	for i, et := range resources {
		cols[i] = fmt.Sprintf("%d", et)
	}
	table := stats.NewTable("speedup vs branch-path resources", "model", cols)
	for _, m := range ilpsim.PaperModels {
		for i, et := range resources {
			r, err := sim.Run(m, et)
			if err != nil {
				log.Fatal(err)
			}
			table.Set(m.String(), i, r.Speedup)
		}
	}
	fmt.Println(table.Render())
}

func okStr(ok bool) string {
	if ok {
		return "OK"
	}
	return "MISMATCH"
}
