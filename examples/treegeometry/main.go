// Tree geometry: explore the theory of §2–3 — how the optimal (greedy)
// DEE tree morphs from the SP chain (p→1) to the eager-execution tree
// (p→0.5), and how the practical static-tree heuristic sizes its
// mainline and DEE region.
//
//	go run ./examples/treegeometry
package main

import (
	"fmt"
	"strings"

	"deesim/internal/dee"
)

func main() {
	fmt.Println("1. Subsumption (Theorem 1): the greedy tree across prediction accuracy")
	fmt.Println("   (12 branch-path resources; M = mainline node, S = side node)")
	for _, p := range []float64{0.55, 0.65, 0.75, 0.85, 0.95, 0.99} {
		tr := dee.BuildGreedy(p, 12)
		var shape []string
		for _, n := range tr.Order {
			if strings.ContainsRune(string(n), rune(dee.NotPred)) {
				shape = append(shape, "S")
			} else {
				shape = append(shape, "M")
			}
		}
		fmt.Printf("   p=%.2f  height=%2d  assignment=%s\n", p, tr.Height(), strings.Join(shape, ""))
	}
	fmt.Println("   p→1: all mainline (single path); p→0.5: breadth-first (eager execution).")
	fmt.Println()

	fmt.Println("2. Static-tree heuristic (§3.1) at the paper's operating points:")
	for _, c := range []struct {
		p  float64
		et int
	}{{0.90, 34}, {0.9053, 32}, {0.9053, 100}, {0.9053, 256}} {
		l, h := dee.StaticShape(c.p, c.et)
		fmt.Printf("   p=%.4f ET=%-3d -> mainline l=%-3d DEE height h=%-2d (%d side paths)\n",
			c.p, c.et, l, h, h*(h+1)/2)
	}
	fmt.Println()

	fmt.Println("3. How closely does the heuristic track the optimal greedy tree?")
	fmt.Println("   (total covered probability Ptot = sum of path cps — Theorem 1's objective)")
	for _, et := range []int{16, 32, 64, 128, 256} {
		p := 0.9053
		greedy := dee.BuildGreedy(p, et).TotalCP()
		static := dee.BuildStatic(p, et).TotalCP()
		sp := dee.BuildSP(p, et).TotalCP()
		ee := dee.BuildEE(p, et).TotalCP()
		fmt.Printf("   ET=%-3d  greedy %.3f  static %.3f (%.1f%%)  SP %.3f  EE %.3f\n",
			et, greedy, static, 100*static/greedy, sp, ee)
	}
	fmt.Println()
	fmt.Println("   The static heuristic captures nearly all of the optimal tree's")
	fmt.Println("   probability mass while being fixed at design time — the paper's")
	fmt.Println("   argument for never computing cumulative probabilities at run time.")
}
